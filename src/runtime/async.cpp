#include "runtime/async.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <sstream>
#include <tuple>

#include "runtime/plan_cache.hpp"
#include "util/rng.hpp"

namespace eds::runtime {

namespace {

constexpr Round kNoHalt = std::numeric_limits<Round>::max();

/// Order-independent deterministic draw: a pure hash of the run seed and
/// structural coordinates, so loss/delay decisions never depend on event-pop
/// order or thread count.
std::uint64_t draw_bits(std::uint64_t seed, std::uint64_t x, std::uint64_t y,
                        std::uint64_t salt) {
  std::uint64_t state = seed;
  state = splitmix64(state) ^ (x + 0x9E3779B97F4A7C15ULL * salt);
  state = splitmix64(state) ^ y;
  return splitmix64(state);
}

double draw01(std::uint64_t seed, std::uint64_t x, std::uint64_t y,
              std::uint64_t salt) {
  return static_cast<double>(draw_bits(seed, x, y, salt) >> 11) * 0x1.0p-53;
}

/// One entry of the delay matrix: the latency of the directed link behind
/// flat port q.
std::uint64_t sample_delay(const DelayModel& model, std::uint64_t seed,
                           std::uint64_t q) {
  switch (model.kind) {
    case DelayKind::kFixed:
      return model.a;
    case DelayKind::kUniform:
      return model.a +
             draw_bits(seed, q, 0, /*salt=*/3) % (model.b - model.a + 1);
    case DelayKind::kGeometric: {
      if (model.a <= 1) return 1;
      const double u = draw01(seed, q, 0, /*salt=*/4);
      const double p = 1.0 / static_cast<double>(model.a);
      const double tail = std::floor(std::log1p(-u) / std::log1p(-p));
      const auto ticks = 1 + static_cast<std::uint64_t>(tail);
      return std::clamp<std::uint64_t>(ticks, 1, model.b);
    }
  }
  return 1;  // unreachable
}

enum class EventKind : std::uint8_t {
  kPayload,     ///< an algorithm message arriving at (node, port)
  kAck,         ///< a transport acknowledgement returning to the sender
  kHaltNotice,  ///< "my side of this link halted after round `round`"
  kCrash,       ///< scheduled node crash from the FaultPlan
  kDeadline,    ///< round timeout (free-running mode only)
};

struct Event {
  std::uint64_t time = 0;
  std::uint64_t prio = 0;  ///< schedule priority; 0 without a Schedule
  port::NodeId node = 0;   ///< the node the event happens at
  Port port = 0;           ///< its local port; 0 for node-level events
  std::uint64_t seq = 0;   ///< global monotone counter, the final tie-break
  EventKind kind = EventKind::kPayload;
  Round round = 0;
  Message payload = kSilence;
  port::NodeId from_node = 0;  ///< payload sender (for acks and the log)
  Port from_port = 0;
};

/// Min-heap order for std::priority_queue: the *smallest* (time, prio,
/// node, port, seq) pops first.  The tuple is a strict total order because
/// seq is unique, which is what makes every run reproducible from its seed.
/// `prio` is the adversarial-schedule hook: stamped at push time from the
/// node's current PCT priority, always 0 without a schedule — so the empty
/// schedule reproduces the historical (time, node, port, seq) order
/// bit-identically.
struct EventAfter {
  bool operator()(const Event& x, const Event& y) const noexcept {
    return std::tie(x.time, x.prio, x.node, x.port, x.seq) >
           std::tie(y.time, y.prio, y.node, y.port, y.seq);
  }
};

/// Per-round input assembly: one slot per port, silence until filled.  The
/// slots use the same struct-of-arrays MessageLanes layout as the
/// synchronous engine's inbox, so both transports exercise one storage
/// path; receive() still gets the contiguous span<Message> the program API
/// promises, via a gather into shared scratch.
struct RoundBuf {
  MessageLanes lanes;
  std::vector<char> have;

  explicit RoundBuf(Port degree) : have(degree, 0) {
    lanes.assign_silence(degree);
  }
};

struct NodeState {
  Round round = 0;            ///< round whose inputs are being assembled
  Round halt_round = kNoHalt; ///< kNoHalt while running; 0 = halted at start
  bool crashed = false;
  Port acks_got = 0;          ///< acks received for this round's sends
  std::deque<RoundBuf> bufs;  ///< bufs[k] holds inputs for round `round`+k
  std::vector<Round> partner_halt;  ///< per port: partner's halt round

  [[nodiscard]] bool running() const noexcept {
    return halt_round == kNoHalt && !crashed;
  }
};

}  // namespace

AsyncPolicy::AsyncPolicy(AsyncOptions options) : options_(std::move(options)) {}

AsyncResult AsyncPolicy::run(const ExecutionPlan& plan,
                             std::vector<std::unique_ptr<NodeProgram>>& programs,
                             const RunOptions& options,
                             const std::string& name) const {
  const std::size_t n = plan.num_nodes();
  if (options.max_rounds == 0) {
    throw InvalidArgument(
        "run_asynchronous: RunOptions::max_rounds must be positive");
  }
  if (programs.size() != n) {
    throw InvalidArgument("run_asynchronous: one program per node required");
  }
  const FaultPlan& faults = options_.faults;
  if (faults.loss < 0.0 || faults.loss > 1.0 || faults.duplicate < 0.0 ||
      faults.duplicate > 1.0) {
    throw InvalidArgument(
        "run_asynchronous: fault probabilities must lie in [0, 1]");
  }
  if (options_.synchronizer && !faults.empty()) {
    throw InvalidArgument(
        "run_asynchronous: the α-synchronizer requires a fault-free "
        "FaultPlan — loss or crashes would stall its per-round "
        "acknowledgements; disable the synchronizer to inject faults");
  }
  if (options_.delay.a == 0 || options_.delay.b < options_.delay.a) {
    throw InvalidArgument("run_asynchronous: malformed DelayModel bounds");
  }
  for (const auto& crash : faults.crashes) {
    if (crash.node >= n) {
      throw InvalidArgument("run_asynchronous: crash of out-of-range node");
    }
  }
  const Schedule& sched = options_.schedule;
  if (!sched.change_points.empty() && sched.prio_seed == 0) {
    throw InvalidArgument(
        "run_asynchronous: Schedule change points require a non-zero "
        "prio_seed (there is no priority lane to demote from)");
  }
  for (const DelayOverride& o : sched.delay_overrides) {
    if (o.port >= plan.total_ports()) {
      throw InvalidArgument(
          "run_asynchronous: Schedule delay override names an out-of-range "
          "flat port");
    }
    if (o.ticks == 0) {
      throw InvalidArgument(
          "run_asynchronous: Schedule delay override of zero ticks (a "
          "zero-latency link would collapse back to the synchronous model)");
    }
  }

  const bool synchronized = options_.synchronizer;
  const std::uint64_t seed = options_.seed;
  const std::uint64_t timeout = options_.round_timeout != 0
                                    ? options_.round_timeout
                                    : 8 * options_.delay.max_delay();

  // The delay matrix: one latency per directed link, fixed for the run.
  // Schedule overrides are applied after sampling, so an override on one
  // link never shifts another link's draw.
  std::vector<std::uint64_t> delays(plan.total_ports());
  for (std::size_t q = 0; q < delays.size(); ++q) {
    delays[q] = sample_delay(options_.delay, seed, q);
  }
  for (const DelayOverride& o : sched.delay_overrides) {
    delays[o.port] = o.ticks;
  }

  // PCT priority lane: initial priorities hash off prio_seed (offset past
  // the demotion band so every demoted node sorts after every fresh one);
  // crossing change point k demotes the node whose pop crossed it.
  // Priorities are stamped on events at push time, so a demotion affects
  // what the node schedules afterwards, never events already in flight —
  // the deterministic analogue of PCT's "change the running thread's
  // priority now".
  const bool prioritized = sched.prio_seed != 0;
  constexpr std::uint64_t kDemotedBand = std::uint64_t{1} << 33;
  std::vector<std::uint64_t> prio;
  std::vector<std::uint64_t> change_points = sched.change_points;
  std::sort(change_points.begin(), change_points.end());
  std::size_t next_change = 0;
  std::vector<char> demoted;
  if (prioritized) {
    prio.resize(n);
    demoted.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      prio[v] = 1 + (draw_bits(sched.prio_seed, v, 0, /*salt=*/5) >> 32);
    }
  }

  AsyncResult out;
  RunResult& result = out.run;
  result.messages_collected = options.collect_messages;
  RunStats& stats = result.stats;
  out.crashed.assign(n, 0);

  std::vector<NodeState> st(n);
  std::priority_queue<Event, std::vector<Event>, EventAfter> timeline;
  std::uint64_t seq = 0;
  const auto push = [&](Event e) {
    if (prioritized) e.prio = prio[e.node];
    e.seq = seq++;
    timeline.push(std::move(e));
  };

  /// Extra latency a sender's transmissions suffer: demote_ticks once the
  /// node has been demoted at a change point, zero otherwise.
  const auto send_penalty = [&](std::size_t v) -> std::uint64_t {
    return prioritized && demoted[v] ? sched.demote_ticks : 0;
  };

  std::vector<Message> stage;          // send-stage scratch
  std::vector<Message> recv;           // receive-gather scratch
  std::vector<std::uint64_t> round_messages(1, 0);  // [round] -> non-silence
  Round max_fired = 0;

  const auto ensure_front = [&](NodeState& s, Port deg) -> RoundBuf& {
    if (s.bufs.empty()) s.bufs.emplace_back(deg);
    return s.bufs.front();
  };

  const auto buf_for = [&](NodeState& s, Round r, Port deg) -> RoundBuf& {
    const std::size_t idx = r - s.round;
    while (s.bufs.size() <= idx) s.bufs.emplace_back(deg);
    return s.bufs[idx];
  };

  const auto schedule_halt_notices = [&](std::size_t v, Round h,
                                         std::uint64_t now) {
    const Port deg = plan.degree(v);
    const std::size_t off = plan.offset(v);
    for (Port i = 1; i <= deg; ++i) {
      const std::size_t q = off + i - 1;
      const port::PortRef to = plan.partner_ref(q);
      push({now + delays[q] + send_penalty(v), 0, to.node, to.port, 0,
            EventKind::kHaltNotice, h});
    }
  };

  const auto send_round = [&](std::size_t v, Round r, std::uint64_t now) {
    NodeState& s = st[v];
    const Port deg = plan.degree(v);
    const std::size_t off = plan.offset(v);
    stats.ports_served += deg;
    stage.assign(deg, kSilence);
    programs[v]->send(r, std::span<Message>(stage.data(), deg));
    if (round_messages.size() <= r) round_messages.resize(r + 1, 0);
    for (Port i = 1; i <= deg; ++i) {
      const std::size_t q = off + i - 1;
      const Message& m = stage[i - 1];
      if (!m.is_silence()) {
        ++stats.messages_sent;
        ++round_messages[r];
        // Logged at transmission (duplicates excluded), not acceptance: the
        // synchronous engine records every non-silence send of a running
        // node — including sends a halted receiver will ignore — so this is
        // the only recording point that keeps the transcript bit-identical.
        if (options.collect_messages) {
          result.message_log.push_back(
              {r, {static_cast<port::NodeId>(v), i}, plan.partner_ref(q), m});
        }
      }
      if (faults.loss > 0.0 && draw01(seed, q, r, /*salt=*/1) < faults.loss) {
        out.fault_log.push_back({now, FaultKind::kLoss,
                                 static_cast<port::NodeId>(v), i, r});
        ++out.async.lost;
        continue;
      }
      const port::PortRef to = plan.partner_ref(q);
      const std::uint64_t arrival = now + delays[q] + send_penalty(v);
      push({arrival, 0, to.node, to.port, 0, EventKind::kPayload, r, m,
            static_cast<port::NodeId>(v), i});
      if (faults.duplicate > 0.0 &&
          draw01(seed, q, r, /*salt=*/2) < faults.duplicate) {
        push({arrival + delays[q], 0, to.node, to.port, 0, EventKind::kPayload,
              r, m, static_cast<port::NodeId>(v), i});
        out.fault_log.push_back({now, FaultKind::kDuplicate,
                                 static_cast<port::NodeId>(v), i, r});
        ++out.async.duplicated;
      }
    }
    if (synchronized) {
      s.acks_got = 0;
    } else {
      push({now + timeout, 0, static_cast<port::NodeId>(v), 0, 0,
            EventKind::kDeadline, r});
    }
  };

  // Fires receive(round) with whatever the front buffer holds (missing
  // slots are silence), then either halts the node or advances it into the
  // next round and sends.  Throws past max_rounds, mirroring the
  // synchronous engine.
  const auto fire = [&](std::size_t v, std::uint64_t now) {
    NodeState& s = st[v];
    const Port deg = plan.degree(v);
    const Round r = s.round;
    RoundBuf& buf = ensure_front(s, deg);
    if (recv.size() < deg) recv.resize(deg);
    buf.lanes.gather(0, deg, recv.data());
    programs[v]->receive(r, std::span<const Message>(recv.data(), deg));
    max_fired = std::max(max_fired, r);
    s.bufs.pop_front();
    if (programs[v]->halted()) {
      s.halt_round = r;
      schedule_halt_notices(v, r, now);
      return;
    }
    if (r + 1 > options.max_rounds) {
      std::size_t still_running = 0;
      for (const NodeState& other : st) still_running += other.running();
      std::ostringstream os;
      os << "run_asynchronous: algorithm '" << name
         << "' did not halt within " << options.max_rounds << " rounds ("
         << still_running << " of " << n << " nodes still running)";
      throw ExecutionError(os.str());
    }
    s.round = r + 1;
    ensure_front(s, deg);
    send_round(v, r + 1, now);
  };

  // A node's round is ready when every port either delivered this round's
  // message or is known to have halted before it (then it reads silence,
  // exactly as in the synchronous engine).
  const auto inputs_ready = [&](const NodeState& s, Port deg) {
    const RoundBuf& buf = s.bufs.front();
    for (Port i = 0; i < deg; ++i) {
      if (!buf.have[i] && s.partner_halt[i] >= s.round) return false;
    }
    return true;
  };

  const auto try_fire = [&](std::size_t v, std::uint64_t now) {
    NodeState& s = st[v];
    const Port deg = plan.degree(v);
    while (s.running()) {
      if (synchronized && s.acks_got < deg) break;
      ensure_front(s, deg);
      if (!inputs_ready(s, deg)) break;
      fire(v, now);
    }
  };

  // --- Initialisation: start every program, let round 1 leave the gates.
  for (std::size_t v = 0; v < n; ++v) {
    NodeState& s = st[v];
    const Port deg = plan.degree(v);
    s.partner_halt.assign(deg, kNoHalt);
    programs[v]->start(deg);
    if (programs[v]->halted()) {
      s.halt_round = 0;
      schedule_halt_notices(v, 0, 0);
      continue;
    }
    s.round = 1;
    ensure_front(s, deg);
    send_round(v, 1, 0);
    try_fire(v, 0);  // degree-0 nodes have no inputs to wait for
  }
  for (const CrashEvent& crash : faults.crashes) {
    push({crash.time, 0, crash.node, 0, 0, EventKind::kCrash, 0});
  }

  // --- The event loop: strictly ordered, single-threaded, deterministic.
  while (!timeline.empty()) {
    const Event e = timeline.top();
    timeline.pop();
    const std::uint64_t now = e.time;
    out.async.virtual_time = std::max(out.async.virtual_time, now);
    ++out.async.events;
    // PCT change point: demote the node whose pop crossed it.  The pop
    // count is itself deterministic, so which node a change point hits is a
    // pure function of (options, schedule) — the replay contract.
    if (prioritized && next_change < change_points.size() &&
        out.async.events >= change_points[next_change]) {
      prio[e.node] = kDemotedBand + next_change;
      demoted[e.node] = 1;
      ++next_change;
    }
    NodeState& s = st[e.node];
    switch (e.kind) {
      case EventKind::kPayload: {
        if (s.crashed) {
          ++out.async.stale;
          break;
        }
        if (synchronized) {
          // Transport-level acknowledgement: receipt is confirmed whether
          // or not the algorithm layer still listens, over the reverse
          // direction of the same link.
          const std::size_t back = plan.offset(e.node) + e.port - 1;
          push({now + delays[back], 0, e.from_node, e.from_port, 0,
                EventKind::kAck, e.round});
        }
        if (s.halt_round != kNoHalt) break;  // halted: payload ignored
        if (e.round < s.round) {
          ++out.async.stale;  // late after a timeout, or a duplicate
          break;
        }
        RoundBuf& buf = buf_for(s, e.round, plan.degree(e.node));
        const Port idx = e.port - 1;
        if (buf.have[idx]) {
          ++out.async.stale;  // duplicated delivery, suppressed
          break;
        }
        buf.have[idx] = 1;
        buf.lanes.store(idx, e.payload);
        ++out.async.delivered;
        if (e.round == s.round) try_fire(e.node, now);
        break;
      }
      case EventKind::kAck: {
        if (s.crashed) break;
        ++out.async.acks;
        ++s.acks_got;
        if (s.halt_round == kNoHalt) try_fire(e.node, now);
        break;
      }
      case EventKind::kHaltNotice: {
        if (s.crashed) break;
        s.partner_halt[e.port - 1] = e.round;
        if (s.halt_round == kNoHalt) try_fire(e.node, now);
        break;
      }
      case EventKind::kCrash: {
        if (s.crashed || s.halt_round != kNoHalt) break;  // no-op once done
        s.crashed = true;
        out.crashed[e.node] = 1;
        out.fault_log.push_back({now, FaultKind::kCrash, e.node, 0, 0});
        break;
      }
      case EventKind::kDeadline: {
        if (!s.running() || s.round != e.round) break;  // superseded
        ++out.async.timeouts;
        fire(e.node, now);  // missing inputs become silence
        try_fire(e.node, now);
        break;
      }
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (st[v].running()) {
      // Unreachable by construction (the synchronizer always completes its
      // waits, free-running nodes always hold a deadline); kept as a
      // defensive check so a future regression fails loudly.
      throw ExecutionError("run_asynchronous: algorithm '" + name +
                           "' stalled with the timeline empty");
    }
  }

  stats.rounds = max_fired;
  if (options.collect_trace) {
    for (Round r = 1; r <= max_fired; ++r) {
      std::size_t halted_cum = 0;
      for (const NodeState& s : st) halted_cum += s.halt_round <= r;
      result.trace.push_back(
          {r, r < round_messages.size() ? round_messages[r] : 0, halted_cum});
    }
  }

  result.outputs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (st[v].halt_round == kNoHalt) continue;  // crashed: empty output
    auto ports = programs[v]->output();
    std::sort(ports.begin(), ports.end());
    const Port deg = plan.degree(v);
    for (const Port p : ports) {
      if (p < 1 || p > deg) {
        throw ExecutionError(
            "run_asynchronous: node output contains an invalid port number");
      }
    }
    if (std::adjacent_find(ports.begin(), ports.end()) != ports.end()) {
      throw ExecutionError(
          "run_asynchronous: node output contains a duplicate port");
    }
    result.outputs[v] = std::move(ports);
  }
  return out;
}

namespace {

/// Plan resolution, same contract as the synchronous path: borrow from the
/// configured cache or compile locally.
const ExecutionPlan& resolve_async_plan(
    const port::PortGraph& g, const ExecOptions& exec,
    std::shared_ptr<const ExecutionPlan>& shared,
    std::optional<ExecutionPlan>& local) {
  if (exec.plan_cache != nullptr) {
    shared = exec.plan_cache->get(g);
    return *shared;
  }
  local.emplace(g);
  return *local;
}

}  // namespace

AsyncResult run_asynchronous(const port::PortGraph& g,
                             const ProgramFactory& factory,
                             const RunOptions& options,
                             const AsyncOptions& async) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    programs.push_back(factory.create());
    if (!programs.back()) {
      throw ExecutionError("run_asynchronous: factory returned null program");
    }
  }
  std::shared_ptr<const ExecutionPlan> shared;
  std::optional<ExecutionPlan> local;
  const ExecutionPlan& plan =
      resolve_async_plan(g, options.exec, shared, local);
  const AsyncPolicy policy(async);
  return policy.run(plan, programs, options, factory.name());
}

AsyncResult run_asynchronous_programs(
    const port::PortGraph& g,
    std::vector<std::unique_ptr<NodeProgram>> programs,
    const RunOptions& options, const AsyncOptions& async,
    const std::string& name) {
  if (programs.size() != g.num_nodes()) {
    throw InvalidArgument(
        "run_asynchronous_programs: one program per node required");
  }
  for (const auto& p : programs) {
    if (!p) throw InvalidArgument("run_asynchronous_programs: null program");
  }
  std::shared_ptr<const ExecutionPlan> shared;
  std::optional<ExecutionPlan> local;
  const ExecutionPlan& plan =
      resolve_async_plan(g, options.exec, shared, local);
  const AsyncPolicy policy(async);
  return policy.run(plan, programs, options, name);
}

}  // namespace eds::runtime
