// Translating distributed outputs into centralised edge sets.
//
// The paper requires algorithm outputs to be internally consistent:
// if i ∈ X(v) and p(v, i) = (u, j), then j ∈ X(u).  validated_edge_set
// enforces that requirement and converts the per-node port sets into an
// EdgeSet over the underlying simple graph, where verifiers operate.
#pragma once

#include <optional>

#include "graph/edge_set.hpp"
#include "port/ported_graph.hpp"
#include "runtime/runner.hpp"

namespace eds::runtime {

/// Converts per-node port outputs into the selected edge set, checking
/// internal consistency; throws ExecutionError when an edge is claimed from
/// one side only.
[[nodiscard]] graph::EdgeSet validated_edge_set(const port::PortedGraph& pg,
                                                const RunResult& result);

/// True when every node announced exactly the same output (used by the
/// covering-map experiments, where symmetry forces identical outputs).
[[nodiscard]] bool all_outputs_identical(const RunResult& result);

/// Port-level internal-consistency check that also works on multigraphs
/// (where no SimpleGraph edge ids exist): i ∈ X(v) with p(v, i) = (u, j)
/// requires j ∈ X(u).  Directed loops are trivially self-consistent.
/// Returns the number of selected structural edges; throws ExecutionError
/// on an inconsistency.
[[nodiscard]] std::size_t validated_selection_size(const port::PortGraph& g,
                                                   const RunResult& result);

/// Non-throwing variant of validated_selection_size for runs that are
/// *expected* to go wrong: under the free-running asynchronous model with
/// faults, one-sided selections are a measured outcome, not a bug.  Returns
/// the selected structural-edge count, or nullopt when the output is
/// internally inconsistent (still throws on a node-count mismatch, which is
/// always a harness bug).
[[nodiscard]] std::optional<std::size_t> consistent_selection_size(
    const port::PortGraph& g, const RunResult& result);

}  // namespace eds::runtime
