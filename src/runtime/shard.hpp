// ProcessShardExecutor: batch execution sharded across worker subprocesses.
//
// A thread pool stops scaling at one machine's cores and shares one address
// space; process shards are the next rung.  This backend forks N copies of
// a worker command (normally `edsim worker`), streams each job to its shard
// as one NDJSON line on stdin, and reads one NDJSON result line per job
// from its stdout.  The Executor contract is preserved exactly:
//
//  * Deterministic job-order merge — every result line carries its job
//    index and lands in the shared reorder buffer, so delivery is the
//    strictly increasing prefix regardless of shard scheduling.
//  * Prefix rule on worker death — if a shard exits (or breaks protocol)
//    before finishing its jobs, every unfinished job of that shard fails
//    with an ExecutionError naming the exit status; results before the
//    lowest failure are delivered, nothing at or after it, and the
//    remaining shards drain before the failure is rethrown.  A shard that
//    answers all its jobs but *then* deviates — extra output, a nonzero
//    exit, a missing summary — fails the batch too (after full delivery):
//    its results are verified, but its counters are incomplete and the
//    worker is out of spec, so success must not be reported.
//  * Per-shard plan caches — each worker keeps its own PlanCache and
//    reports compiled/hit counters in a trailing summary line; jobs are
//    routed by JobSpec::group (the graph's structural hash), so one
//    structure is compiled by exactly one worker and the aggregated
//    counters match a single-process sweep (absent cache eviction).
//
// The wire format (`schema` 1) is NDJSON with a fixed field order — a
// private protocol between same-version binaries, versioned so a future
// schema can be rejected loudly instead of misparsed:
//
//   parent -> worker:  {"schema":1,"job":{"index":I,"algorithm":"T",
//                       "param":P,"threads":N,"max_rounds":R,"graph":"…"}}
//   worker -> parent:  {"schema":1,"result":{"index":I,"rounds":R,
//                       "messages":M,"ports_served":S,"outputs":[[…],…]}}
//                      {"schema":1,"error":{"index":I,"message":"…"}}
//                      {"schema":1,"worker_summary":{"jobs":J,
//                       "plans_compiled":C,"plan_hits":H}}
//
// Workers process jobs sequentially in arrival order and flush after every
// line, so the parent can interleave writing and reading without deadlock;
// a worker emits its summary on stdin EOF and exits 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/batch.hpp"
#include "runtime/executor.hpp"

namespace eds::runtime {

/// The NDJSON protocol version spoken by ProcessShardExecutor and
/// `edsim worker` (and stamped on `edsim sweep --ndjson` output).
inline constexpr int kWireSchemaVersion = 1;

/// One job as it crosses the process boundary.
struct WireJob {
  std::size_t index = 0;     ///< global batch index, echoed in the result
  std::string algorithm;     ///< opaque token (algo::algorithm_from_token)
  Port param = 0;            ///< resolved factory parameter
  unsigned threads = 1;      ///< ExecOptions::threads inside the worker
  Round max_rounds = 0;      ///< RunOptions::max_rounds
  std::string graph_text;    ///< port::write_port_graph text form
};

/// Worker-side counters reported in the trailing summary line.
struct WorkerSummary {
  std::uint64_t jobs = 0;            ///< result/error lines emitted
  std::uint64_t plans_compiled = 0;  ///< worker PlanCache misses
  std::uint64_t plan_hits = 0;       ///< worker PlanCache hits
};

/// One parsed line of worker output.
struct WorkerLine {
  enum class Kind { kResult, kError, kSummary };
  Kind kind = Kind::kResult;
  std::size_t index = 0;   ///< kResult / kError
  RunResult result;        ///< kResult (outputs + stats; no trace/log)
  std::string message;     ///< kError
  WorkerSummary summary;   ///< kSummary
};

/// Wire codecs.  Encoders emit exactly one line (no trailing newline);
/// decoders are strict — any deviation from the fixed shape, including an
/// unknown schema version, throws InvalidArgument.
[[nodiscard]] std::string encode_wire_job(const WireJob& job);
[[nodiscard]] WireJob decode_wire_job(const std::string& line);
[[nodiscard]] std::string encode_wire_result(std::size_t index,
                                             const RunResult& result);
[[nodiscard]] std::string encode_wire_error(std::size_t index,
                                            const std::string& message);
[[nodiscard]] std::string encode_worker_summary(const WorkerSummary& summary);
[[nodiscard]] WorkerLine decode_worker_line(const std::string& line);

/// The process-sharding backend.  POSIX-only: constructing one on a
/// platform without fork/pipe throws InvalidArgument.
class ProcessShardExecutor final : public Executor {
 public:
  /// Aggregate counters across every run_streaming call (monotonic).
  /// plans_compiled/plan_hits sum the worker summaries, so a sweep can
  /// report cache effectiveness exactly as an in-process run would.
  struct Stats {
    std::uint64_t jobs_shipped = 0;
    std::uint64_t workers_spawned = 0;
    std::uint64_t plans_compiled = 0;
    std::uint64_t plan_hits = 0;
  };

  /// `worker_command` is the argv of one shard process (e.g.
  /// {"/path/to/edsim", "worker"}); it must speak the wire protocol above.
  /// `shards` as in ExecOptions::threads: 0 = one shard per hardware
  /// thread.  Workers are spawned per batch — a shard with no jobs routed
  /// to it is never forked — so an idle executor holds no processes.
  explicit ProcessShardExecutor(std::vector<std::string> worker_command,
                                unsigned shards = 0);
  ~ProcessShardExecutor() override;

  /// Every job must carry a JobSpec and must not request trace or message
  /// collection (those RunResult fields do not cross the wire).
  void validate(const std::vector<BatchJob>& jobs) const override;

  /// Throws InvalidArgument (via validate) before anything is spawned.
  void run_streaming(const std::vector<BatchJob>& jobs,
                     const ResultCallback& on_result) const override;

  /// Shard count after resolving 0 to the hardware thread count.
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }

  [[nodiscard]] Stats stats() const;

 private:
  std::vector<std::string> worker_command_;
  unsigned shards_;
  mutable std::mutex stats_mutex_;
  mutable Stats stats_;
};

}  // namespace eds::runtime
