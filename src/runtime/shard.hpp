// ProcessShardExecutor: batch execution sharded across worker subprocesses.
//
// A thread pool stops scaling at one machine's cores and shares one address
// space; process shards are the next rung.  This backend streams each job to
// a worker process (normally `edsim worker`) as one NDJSON line on stdin and
// reads one NDJSON result line per job from its stdout.  Since schema 2 the
// workers are *pooled*: a runtime::WorkerPool (worker_pool.hpp) keeps the
// fleet alive across batches, so repeated sweeps pay fork/exec and
// plan-cache warmup once instead of per batch.  The Executor contract is
// preserved exactly:
//
//  * Deterministic job-order merge — every result line carries its job
//    index and lands in the shared reorder buffer, so delivery is the
//    strictly increasing prefix regardless of shard scheduling.
//  * Prefix rule on worker death — if a shard exits (or breaks protocol)
//    before finishing its batch jobs, every unfinished job of that shard
//    fails with an ExecutionError naming the exit status; results before
//    the lowest failure are delivered, nothing at or after it, and the
//    remaining shards drain before the failure is rethrown.  A shard that
//    answers all its jobs but *then* deviates — extra output, an early
//    exit, a missing summary — fails the batch too (after full delivery).
//    The *next* batch through the pool transparently respawns the dead
//    slot (counted in stats().workers_respawned).
//  * Per-shard plan caches — each worker keeps its own PlanCache and
//    reports compiled/hit counters in a per-batch summary line; jobs are
//    routed by JobSpec::group (the graph's structural hash), so one
//    structure is compiled by exactly one worker and the aggregated
//    counters match a single-process sweep (absent cache eviction).
//    Because the cache outlives the batch, a warm pool turns repeated
//    structures into hits across batches, not just within one.
//
// The wire format (`schema` 2) is NDJSON with a fixed field order — a
// private protocol between same-version binaries, versioned so a foreign
// schema is rejected loudly instead of misparsed.  Batches are framed
// explicitly so one worker process can serve many batches:
//
//   parent -> worker:  {"schema":2,"batch_begin":{"batch":B}}
//                      {"schema":2,"job":{"index":I,"algorithm":"T",
//                       "param":P,"threads":N,"max_rounds":R,
//                       ["async":{…},]"graph":"…"}}
//                      {"schema":2,"batch_end":{"batch":B}}
//   worker -> parent:  {"schema":2,"result":{"index":I,"rounds":R,
//                       "messages":M,"ports_served":S,"outputs":[[…],…]}}
//                      {"schema":2,"error":{"index":I,"message":"…"}}
//                      {"schema":2,"worker_summary":{"batch":B,"jobs":J,
//                       "plans_compiled":C,"plan_hits":H,"total_jobs":TJ,
//                       "total_compiled":TC,"total_hits":TH}}
//
// The optional `async` object serializes AsyncOptions (canonical delay
// spec, seed, loss/duplication probabilities at max_digits10 so they
// round-trip bit-exactly, round timeout, scripted crashes), which is what
// lets `--model async` jobs cross the wire.  Adversarial Schedules do NOT
// cross: they are an in-process search artifact (validate rejects them).
//
// Workers process jobs sequentially in arrival order and flush after every
// line, so the parent can interleave writing and reading without deadlock.
// A schema-2 worker answers `batch_end` with one `worker_summary` carrying
// per-batch AND cumulative cache counters, then waits for the next
// `batch_begin`; stdin EOF ends the process cleanly (exit 0).  For
// back-compat a worker whose *first* stdin line is a schema-1 job line
// runs the legacy single-batch protocol: jobs until EOF, then one
// schema-1 summary ({"jobs":J,"plans_compiled":C,"plan_hits":H}).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault.hpp"

namespace eds::runtime {

class WorkerPool;

/// The NDJSON protocol version spoken by ProcessShardExecutor and
/// `edsim worker` (and stamped on `edsim sweep --ndjson` output).
inline constexpr int kWireSchemaVersion = 2;

/// The oldest schema `edsim worker` still accepts (single-batch, no
/// framing, no async payload).  Anything outside [legacy, current] is
/// rejected loudly.
inline constexpr int kLegacyWireSchemaVersion = 1;

/// One job as it crosses the process boundary.
struct WireJob {
  std::size_t index = 0;     ///< global batch index, echoed in the result
  std::string algorithm;     ///< opaque token (algo::algorithm_from_token)
  Port param = 0;            ///< resolved factory parameter
  unsigned threads = 1;      ///< ExecOptions::threads inside the worker
  Round max_rounds = 0;      ///< RunOptions::max_rounds
  /// Asynchronous execution model, if any (schema >= 2 only).  The
  /// embedded Schedule must be empty: adversarial schedules never cross.
  std::optional<AsyncOptions> async;
  std::string graph_text;    ///< port::write_port_graph text form
};

/// Worker-side counters reported in the summary line that ends a batch.
/// Schema-1 workers report the three legacy fields once, at EOF; schema-2
/// workers add the batch id and cumulative process-lifetime totals, which
/// is how a warm pool proves its caches stayed hot across batches.
struct WorkerSummary {
  std::uint64_t batch_id = 0;        ///< echoed batch id (schema >= 2)
  std::uint64_t jobs = 0;            ///< result/error lines in this batch
  std::uint64_t plans_compiled = 0;  ///< PlanCache misses in this batch
  std::uint64_t plan_hits = 0;       ///< PlanCache hits in this batch
  std::uint64_t total_jobs = 0;      ///< jobs over the worker's lifetime
  std::uint64_t total_compiled = 0;  ///< lifetime PlanCache misses
  std::uint64_t total_hits = 0;      ///< lifetime PlanCache hits
};

/// One parsed line of worker output.
struct WorkerLine {
  enum class Kind { kResult, kError, kSummary };
  Kind kind = Kind::kResult;
  int schema = kWireSchemaVersion;  ///< version the worker spoke
  std::size_t index = 0;   ///< kResult / kError
  RunResult result;        ///< kResult (outputs + stats; no trace/log)
  std::string message;     ///< kError
  WorkerSummary summary;   ///< kSummary
};

/// One parsed line of parent input, as seen by the worker main loop.
struct ParentLine {
  enum class Kind { kJob, kBatchBegin, kBatchEnd };
  Kind kind = Kind::kJob;
  int schema = kWireSchemaVersion;  ///< version the parent spoke
  WireJob job;                      ///< kJob
  std::uint64_t batch_id = 0;       ///< kBatchBegin / kBatchEnd
};

/// Wire codecs.  Encoders emit exactly one line (no trailing newline);
/// decoders are strict — any deviation from the fixed shape, including an
/// unknown schema version, throws InvalidArgument.  Worker-side encoders
/// take the schema to speak (a legacy-mode worker answers in schema 1).
[[nodiscard]] std::string encode_wire_job(const WireJob& job,
                                          int schema = kWireSchemaVersion);
[[nodiscard]] WireJob decode_wire_job(const std::string& line);
[[nodiscard]] std::string encode_batch_begin(std::uint64_t batch_id);
[[nodiscard]] std::string encode_batch_end(std::uint64_t batch_id);
[[nodiscard]] ParentLine decode_parent_line(const std::string& line);
[[nodiscard]] std::string encode_wire_result(std::size_t index,
                                             const RunResult& result,
                                             int schema = kWireSchemaVersion);
[[nodiscard]] std::string encode_wire_error(std::size_t index,
                                            const std::string& message,
                                            int schema = kWireSchemaVersion);
[[nodiscard]] std::string encode_worker_summary(const WorkerSummary& summary,
                                                int schema = kWireSchemaVersion);
[[nodiscard]] WorkerLine decode_worker_line(const std::string& line);

namespace detail {
/// Writer-thread fast path (worker_pool.cpp): escape each distinct graph
/// text once, then stamp job lines around the cached segment instead of
/// re-scanning the (potentially large) text per repeat.
void wire_escape(std::string& out, const std::string& text);
[[nodiscard]] std::string encode_wire_job_preescaped(
    const WireJob& job, const std::string& escaped_graph);
}  // namespace detail

/// The process-sharding backend.  POSIX-only: constructing one on a
/// platform without fork/pipe throws InvalidArgument.
class ProcessShardExecutor final : public Executor {
 public:
  /// Aggregate counters across every run_streaming call (monotonic).
  /// plans_compiled/plan_hits sum the per-batch worker summaries, so a
  /// sweep can report cache effectiveness exactly as an in-process run
  /// would; workers_spawned counts every fork (a respawn increments both
  /// it and workers_respawned), so a warm second batch shows a spawn
  /// delta of zero.
  struct Stats {
    std::uint64_t jobs_shipped = 0;
    std::uint64_t batches_run = 0;
    std::uint64_t workers_spawned = 0;
    std::uint64_t workers_respawned = 0;  ///< replacements for dead workers
    std::uint64_t workers_reaped = 0;     ///< idle-timeout retirements
    std::uint64_t plans_compiled = 0;
    std::uint64_t plan_hits = 0;
  };

  /// Pool behaviour knobs (see WorkerPool for the lifecycle details).
  struct Options {
    /// Keep workers alive between run_streaming calls (the default).
    /// When false every batch forks a fresh fleet and drains it before
    /// returning — the pre-pool behaviour, kept as the `--no-pool`
    /// escape hatch and as the differential baseline for tests.
    bool pooled = true;
    /// A warm worker untouched for this long is retired at the start of
    /// the next batch (0 = never).  Pooled mode only.
    std::uint64_t idle_timeout_ms = 5 * 60 * 1000;
  };

  /// `worker_command` is the argv of one shard process (e.g.
  /// {"/path/to/edsim", "worker"}); it must speak the wire protocol above.
  /// `shards` as in ExecOptions::threads: 0 = one shard per hardware
  /// thread.  Workers are spawned lazily — a shard no batch has routed a
  /// job to is never forked — so an idle executor holds no processes.
  explicit ProcessShardExecutor(std::vector<std::string> worker_command,
                                unsigned shards = 0);
  ProcessShardExecutor(std::vector<std::string> worker_command,
                       unsigned shards, Options options);
  ~ProcessShardExecutor() override;

  /// Every job must carry a JobSpec and must not request trace or message
  /// collection (those RunResult fields do not cross the wire).  Async
  /// jobs cross since schema 2, but their Schedule must be empty.
  void validate(const std::vector<BatchJob>& jobs) const override;

  /// Throws InvalidArgument (via validate) before anything is spawned.
  /// Batches are serialized: concurrent callers queue on the pool.
  void run_streaming(const std::vector<BatchJob>& jobs,
                     const ResultCallback& on_result) const override;

  /// Shard count after resolving 0 to the hardware thread count.
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }

  /// Worker processes currently alive and warm (0 before the first batch,
  /// after an idle reap, or always in unpooled mode).
  [[nodiscard]] std::size_t live_workers() const;

  /// Retires pooled workers now (clean EOF + reap); the next batch
  /// respawns lazily.  No-op in unpooled mode.
  void drain() const;

  [[nodiscard]] Stats stats() const;

 private:
  std::vector<std::string> worker_command_;
  unsigned shards_;
  Options options_;
  mutable std::mutex pool_mutex_;        ///< guards pool_ and retired_
  mutable std::unique_ptr<WorkerPool> pool_;  ///< live fleet (pooled mode)
  mutable Stats retired_;  ///< counters from already-drained pools
};

}  // namespace eds::runtime
