// ProcessShardExecutor: batch execution sharded across worker subprocesses.
//
// A thread pool stops scaling at one machine's cores and shares one address
// space; process shards are the next rung.  This backend streams each job to
// a worker process (normally `edsim worker`) as one NDJSON line on stdin and
// reads one NDJSON result line per job from its stdout.  Since schema 2 the
// workers are *pooled*: a runtime::WorkerPool (worker_pool.hpp) keeps the
// fleet alive across batches, so repeated sweeps pay fork/exec and
// plan-cache warmup once instead of per batch.  The Executor contract is
// preserved exactly:
//
//  * Deterministic job-order merge — every result line carries its job
//    index and lands in the shared reorder buffer, so delivery is the
//    strictly increasing prefix regardless of shard scheduling.
//  * Resilience on worker death — by default a worker that exits (or
//    breaks protocol) mid-batch no longer fails its unfinished jobs: the
//    in-flight job is charged one attempt and the orphans are re-queued
//    to a healthy/respawned worker with exponential backoff, so the batch
//    completes byte-identical to an in-process run (retries are visible
//    in stats(), not in results).  A job that keeps killing workers is
//    *poisoned* once its attempt budget (Options::max_retries) runs out
//    and fails alone, carrying every attempt's exit status; optional job
//    and batch deadlines kill hung workers instead of stalling; a
//    crash-loop breaker quarantines the pool, optionally degrading to
//    in-process execution.  Setting max_retries to zero restores the
//    strict prefix rule: every unfinished job of a dead shard fails with
//    an ExecutionError naming the exit status, results before the lowest
//    failure are delivered, and a shard that answers all its jobs but
//    then deviates fails the batch after full delivery.  Either way the
//    next batch transparently respawns dead slots (workers_respawned).
//  * Per-shard plan caches — each worker keeps its own PlanCache and
//    reports compiled/hit counters in a per-batch summary line; jobs are
//    routed by JobSpec::group (the graph's structural hash), so one
//    structure is compiled by exactly one worker and the aggregated
//    counters match a single-process sweep (absent cache eviction).
//    Because the cache outlives the batch, a warm pool turns repeated
//    structures into hits across batches, not just within one.
//
// The wire format (`schema` 2) is NDJSON with a fixed field order — a
// private protocol between same-version binaries, versioned so a foreign
// schema is rejected loudly instead of misparsed.  Batches are framed
// explicitly so one worker process can serve many batches:
//
//   parent -> worker:  {"schema":2,"batch_begin":{"batch":B}}
//                      {"schema":2,"job":{"index":I,"algorithm":"T",
//                       "param":P,"threads":N,"max_rounds":R,
//                       ["async":{…},]"graph":"…"}}
//                      {"schema":2,"batch_end":{"batch":B}}
//   worker -> parent:  {"schema":2,"result":{"index":I,"rounds":R,
//                       "messages":M,"ports_served":S,"outputs":[[…],…]}}
//                      {"schema":2,"error":{"index":I,"message":"…"}}
//                      {"schema":2,"worker_summary":{"batch":B,"jobs":J,
//                       "plans_compiled":C,"plan_hits":H,"total_jobs":TJ,
//                       "total_compiled":TC,"total_hits":TH}}
//
// The optional `async` object serializes AsyncOptions (canonical delay
// spec, seed, loss/duplication probabilities at max_digits10 so they
// round-trip bit-exactly, round timeout, scripted crashes), which is what
// lets `--model async` jobs cross the wire.  Adversarial Schedules do NOT
// cross: they are an in-process search artifact (validate rejects them).
//
// Workers process jobs sequentially in arrival order and flush after every
// line, so the parent can interleave writing and reading without deadlock.
// A schema-2 worker answers `batch_end` with one `worker_summary` carrying
// per-batch AND cumulative cache counters, then waits for the next
// `batch_begin`; stdin EOF ends the process cleanly (exit 0).  For
// back-compat a worker whose *first* stdin line is a schema-1 job line
// runs the legacy single-batch protocol: jobs until EOF, then one
// schema-1 summary ({"jobs":J,"plans_compiled":C,"plan_hits":H}).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/batch.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault.hpp"

namespace eds::runtime {

class WorkerPool;

/// The NDJSON protocol version spoken by ProcessShardExecutor and
/// `edsim worker` (and stamped on `edsim sweep --ndjson` output).
inline constexpr int kWireSchemaVersion = 2;

/// The oldest schema `edsim worker` still accepts (single-batch, no
/// framing, no async payload).  Anything outside [legacy, current] is
/// rejected loudly.
inline constexpr int kLegacyWireSchemaVersion = 1;

/// One job as it crosses the process boundary.
struct WireJob {
  std::size_t index = 0;     ///< global batch index, echoed in the result
  std::string algorithm;     ///< opaque token (algo::algorithm_from_token)
  Port param = 0;            ///< resolved factory parameter
  unsigned threads = 1;      ///< ExecOptions::threads inside the worker
  Round max_rounds = 0;      ///< RunOptions::max_rounds
  /// Asynchronous execution model, if any (schema >= 2 only).  The
  /// embedded Schedule must be empty: adversarial schedules never cross.
  std::optional<AsyncOptions> async;
  std::string graph_text;    ///< port::write_port_graph text form
};

/// Worker-side counters reported in the summary line that ends a batch.
/// Schema-1 workers report the three legacy fields once, at EOF; schema-2
/// workers add the batch id and cumulative process-lifetime totals, which
/// is how a warm pool proves its caches stayed hot across batches.
struct WorkerSummary {
  std::uint64_t batch_id = 0;        ///< echoed batch id (schema >= 2)
  std::uint64_t jobs = 0;            ///< result/error lines in this batch
  std::uint64_t plans_compiled = 0;  ///< PlanCache misses in this batch
  std::uint64_t plan_hits = 0;       ///< PlanCache hits in this batch
  std::uint64_t total_jobs = 0;      ///< jobs over the worker's lifetime
  std::uint64_t total_compiled = 0;  ///< lifetime PlanCache misses
  std::uint64_t total_hits = 0;      ///< lifetime PlanCache hits
};

/// One parsed line of worker output.
struct WorkerLine {
  enum class Kind { kResult, kError, kSummary };
  Kind kind = Kind::kResult;
  int schema = kWireSchemaVersion;  ///< version the worker spoke
  std::size_t index = 0;   ///< kResult / kError
  RunResult result;        ///< kResult (outputs + stats; no trace/log)
  std::string message;     ///< kError
  WorkerSummary summary;   ///< kSummary
};

/// One parsed line of parent input, as seen by the worker main loop.
struct ParentLine {
  enum class Kind { kJob, kBatchBegin, kBatchEnd };
  Kind kind = Kind::kJob;
  int schema = kWireSchemaVersion;  ///< version the parent spoke
  WireJob job;                      ///< kJob
  std::uint64_t batch_id = 0;       ///< kBatchBegin / kBatchEnd
};

/// Wire codecs.  Encoders emit exactly one line (no trailing newline);
/// decoders are strict — any deviation from the fixed shape, including an
/// unknown schema version, throws InvalidArgument.  Worker-side encoders
/// take the schema to speak (a legacy-mode worker answers in schema 1).
[[nodiscard]] std::string encode_wire_job(const WireJob& job,
                                          int schema = kWireSchemaVersion);
[[nodiscard]] WireJob decode_wire_job(const std::string& line);
[[nodiscard]] std::string encode_batch_begin(std::uint64_t batch_id);
[[nodiscard]] std::string encode_batch_end(std::uint64_t batch_id);
[[nodiscard]] ParentLine decode_parent_line(const std::string& line);
[[nodiscard]] std::string encode_wire_result(std::size_t index,
                                             const RunResult& result,
                                             int schema = kWireSchemaVersion);
[[nodiscard]] std::string encode_wire_error(std::size_t index,
                                            const std::string& message,
                                            int schema = kWireSchemaVersion);
[[nodiscard]] std::string encode_worker_summary(const WorkerSummary& summary,
                                                int schema = kWireSchemaVersion);
[[nodiscard]] WorkerLine decode_worker_line(const std::string& line);

namespace detail {
/// Writer-thread fast path (worker_pool.cpp): escape each distinct graph
/// text once, then stamp job lines around the cached segment instead of
/// re-scanning the (potentially large) text per repeat.
void wire_escape(std::string& out, const std::string& text);
[[nodiscard]] std::string encode_wire_job_preescaped(
    const WireJob& job, const std::string& escaped_graph);
/// Diagnostic context for a protocol failure: `line 17 ("{"schema":2,…")`
/// — 1-based line number plus a truncated, escape-sanitized snippet of the
/// raw line, so a chaos-garbled frame is debuggable from the error alone.
[[nodiscard]] std::string describe_wire_line(std::size_t line_no,
                                             const std::string& line);
}  // namespace detail

// ---------------------------------------------------------------------------
// Deterministic process-level chaos (the `edsim worker --chaos SPEC` hook,
// also routed through the EDS_WORKER_CHAOS environment variable).  Every
// retry / deadline / quarantine path in the resilience layer is exercised
// by *replayable* worker misbehaviour: the spec is a pure function of
// (spec, job ordinal, wire index), so a failing run reproduces exactly.

/// One parsed `--chaos` specification.
///
///   crash:N        exit 7 after answering the Nth job (process-cumulative;
///                  `--fail-after K` is an alias for `crash:K`)
///   hang:N:MS      sleep MS ms before answering the Nth job
///   garbage:N      emit a non-protocol line instead of the Nth result and
///                  keep running (the parent kills on the violation)
///   slow:N:MS      write the Nth result line in two flushes MS ms apart
///   exit-mid:N     write half of the Nth result line and exit 11
///   poison:I       exit 13 on receiving the job with *wire index* I —
///                  the poison-job simulator: every worker that is handed
///                  job I dies, every time
///   rand:SEED:PM   seeded per-job draw: with probability PM/1000 apply one
///                  of crash / garbage / exit-mid / slow, chosen by the
///                  same draw (deterministic in SEED and the job ordinal)
struct ChaosSpec {
  enum class Mode {
    kNone,
    kCrash,
    kHang,
    kGarbage,
    kSlow,
    kExitMid,
    kPoison,
    kRandom,
  };
  Mode mode = Mode::kNone;
  std::uint64_t n = 0;         ///< job ordinal (1-based), or wire index (poison)
  std::uint64_t ms = 0;        ///< hang / slow delay
  std::uint64_t seed = 0;      ///< rand
  std::uint64_t permille = 0;  ///< rand: fault probability out of 1000
};

/// Parses a chaos spec ("" = none).  Throws InvalidArgument on anything
/// malformed — an unknown mode, a missing field, permille > 1000.
[[nodiscard]] ChaosSpec parse_chaos_spec(const std::string& spec);

/// Canonical text form; parse_chaos_spec(format_chaos_spec(s)) == s.
[[nodiscard]] std::string format_chaos_spec(const ChaosSpec& spec);

/// The action a worker applies to one job: a pure function of the spec,
/// the 1-based process-cumulative job ordinal, and the job's wire index.
/// kCrash in the result means "die after answering this job"; kNone means
/// behave normally.
struct ChaosAction {
  ChaosSpec::Mode mode = ChaosSpec::Mode::kNone;
  std::uint64_t ms = 0;
};
[[nodiscard]] ChaosAction chaos_action(const ChaosSpec& spec,
                                       std::uint64_t job_ordinal,
                                       std::size_t wire_index);

/// The process-sharding backend.  POSIX-only: constructing one on a
/// platform without fork/pipe throws InvalidArgument.
class ProcessShardExecutor final : public Executor {
 public:
  /// Aggregate counters across every run_streaming call (monotonic).
  /// plans_compiled/plan_hits sum the per-batch worker summaries, so a
  /// sweep can report cache effectiveness exactly as an in-process run
  /// would; workers_spawned counts every fork (a respawn increments both
  /// it and workers_respawned), so a warm second batch shows a spawn
  /// delta of zero.
  struct Stats {
    std::uint64_t jobs_shipped = 0;       ///< job shipments incl. retries
    std::uint64_t batches_run = 0;
    std::uint64_t workers_spawned = 0;
    std::uint64_t workers_respawned = 0;  ///< replacements for dead workers
    std::uint64_t workers_reaped = 0;     ///< idle-timeout retirements
    std::uint64_t plans_compiled = 0;
    std::uint64_t plan_hits = 0;
    // Resilience counters (all zero on a clean run, so the observable
    // sweep summary is byte-identical to the pre-resilience format).
    std::uint64_t jobs_retried = 0;     ///< orphaned jobs re-shipped
    std::uint64_t jobs_poisoned = 0;    ///< jobs whose attempt budget ran out
    std::uint64_t deadline_kills = 0;   ///< SIGKILLs for a blown job deadline
    std::uint64_t batch_timeouts = 0;   ///< batches cut off at the deadline
    std::uint64_t pool_quarantines = 0; ///< crash-loop breaker trips
    std::uint64_t fallback_jobs = 0;    ///< jobs rerouted in-process
    std::uint64_t summaries_lost = 0;   ///< batch summaries a death swallowed
  };

  /// Pool behaviour knobs (see WorkerPool for the lifecycle details).
  struct Options {
    /// Keep workers alive between run_streaming calls (the default).
    /// When false every batch forks a fresh fleet and drains it before
    /// returning — the pre-pool behaviour, kept as the `--no-pool`
    /// escape hatch and as the differential baseline for tests.
    bool pooled = true;
    /// A warm worker untouched for this long is retired at the start of
    /// the next batch (0 = never).  Pooled mode only.
    std::uint64_t idle_timeout_ms = 5 * 60 * 1000;
    /// Attempt budget per job beyond the first try.  A job orphaned by a
    /// worker death is re-queued (with backoff) until the budget runs out,
    /// at which point it is *poisoned*: it fails alone with per-attempt
    /// diagnostics while its batch siblings complete.  0 restores the
    /// strict pre-resilience prefix rule: any worker death fails every
    /// unfinished job of that shard and the batch throws.
    unsigned max_retries = 2;
    /// Base delay before a retry pass; doubles each pass, capped at 1s.
    std::uint64_t retry_backoff_ms = 10;
    /// A worker that goes this long without completing a result line is
    /// SIGKILLed (counted in deadline_kills) and its in-flight job charged
    /// an attempt + retried elsewhere.  0 = no job deadline.
    std::uint64_t job_timeout_ms = 0;
    /// Hard wall-clock bound for one batch: past it every still-running
    /// worker is killed and the unfinished jobs fail cleanly instead of
    /// hanging.  0 = no batch deadline.
    std::uint64_t batch_timeout_ms = 0;
    /// Crash-loop breaker: more worker deaths than this inside one batch
    /// quarantines the pool (0 = breaker off).  A quarantined pool fails
    /// fast — or degrades gracefully when fallback_inprocess is set —
    /// until drain() resets it.
    std::uint64_t breaker_deaths = 8;
    /// When the breaker trips (or a quarantined pool receives a batch),
    /// reroute the remaining jobs through in-process execution instead of
    /// failing them.  Results stay bit-identical by construction: workers
    /// run the same run_synchronous the fallback calls.
    bool fallback_inprocess = false;
  };

  /// `worker_command` is the argv of one shard process (e.g.
  /// {"/path/to/edsim", "worker"}); it must speak the wire protocol above.
  /// `shards` as in ExecOptions::threads: 0 = one shard per hardware
  /// thread.  Workers are spawned lazily — a shard no batch has routed a
  /// job to is never forked — so an idle executor holds no processes.
  explicit ProcessShardExecutor(std::vector<std::string> worker_command,
                                unsigned shards = 0);
  ProcessShardExecutor(std::vector<std::string> worker_command,
                       unsigned shards, Options options);
  ~ProcessShardExecutor() override;

  /// Every job must carry a JobSpec and must not request trace or message
  /// collection (those RunResult fields do not cross the wire).  Async
  /// jobs cross since schema 2, but their Schedule must be empty.
  void validate(const std::vector<BatchJob>& jobs) const override;

  /// Throws InvalidArgument (via validate) before anything is spawned.
  /// Batches are serialized: concurrent callers queue on the pool.
  void run_streaming(const std::vector<BatchJob>& jobs,
                     const ResultCallback& on_result) const override;

  /// Shard count after resolving 0 to the hardware thread count.
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }

  /// Worker processes currently alive and warm (0 before the first batch,
  /// after an idle reap, or always in unpooled mode).
  [[nodiscard]] std::size_t live_workers() const;

  /// Retires pooled workers now (clean EOF + reap); the next batch
  /// respawns lazily.  Also lifts a quarantine.  No-op in unpooled mode.
  void drain() const;

  /// True while the pooled fleet is quarantined by the crash-loop breaker
  /// (always false in unpooled mode: an ephemeral pool's quarantine dies
  /// with its batch).  drain() resets it.
  [[nodiscard]] bool quarantined() const;

  [[nodiscard]] Stats stats() const;

 private:
  std::vector<std::string> worker_command_;
  unsigned shards_;
  Options options_;
  mutable std::mutex pool_mutex_;        ///< guards pool_ and retired_
  mutable std::unique_ptr<WorkerPool> pool_;  ///< live fleet (pooled mode)
  mutable Stats retired_;  ///< counters from already-drained pools
};

}  // namespace eds::runtime
