#include "runtime/fault.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace eds::runtime {

namespace {

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(spec);
  while (std::getline(is, part, ':')) parts.push_back(part);
  return parts;
}

std::uint64_t parse_ticks(const std::string& text, const std::string& spec) {
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument("parse_delay_model: bad tick count '" + text +
                          "' in '" + spec + "'");
  }
}

}  // namespace

DelayModel parse_delay_model(const std::string& spec) {
  const auto parts = split_spec(spec);
  DelayModel model;
  if (parts.size() == 2 && parts[0] == "fixed") {
    model.kind = DelayKind::kFixed;
    model.a = model.b = parse_ticks(parts[1], spec);
  } else if (parts.size() == 3 && parts[0] == "uniform") {
    model.kind = DelayKind::kUniform;
    model.a = parse_ticks(parts[1], spec);
    model.b = parse_ticks(parts[2], spec);
  } else if ((parts.size() == 2 || parts.size() == 3) &&
             parts[0] == "geometric") {
    model.kind = DelayKind::kGeometric;
    model.a = parse_ticks(parts[1], spec);
    model.b = parts.size() == 3 ? parse_ticks(parts[2], spec) : 8 * model.a;
  } else {
    throw InvalidArgument(
        "parse_delay_model: expected fixed:T, uniform:LO:HI or "
        "geometric:MEAN[:CAP], got '" +
        spec + "'");
  }
  if (model.a == 0 || model.b == 0) {
    throw InvalidArgument("parse_delay_model: delays must be >= 1 in '" +
                          spec + "'");
  }
  if (model.a > model.b) {
    throw InvalidArgument("parse_delay_model: lower bound exceeds upper in '" +
                          spec + "'");
  }
  return model;
}

std::string format_delay_model(const DelayModel& model) {
  std::ostringstream os;
  switch (model.kind) {
    case DelayKind::kFixed:
      os << "fixed:" << model.a;
      break;
    case DelayKind::kUniform:
      os << "uniform:" << model.a << ':' << model.b;
      break;
    case DelayKind::kGeometric:
      os << "geometric:" << model.a << ':' << model.b;
      break;
  }
  return os.str();
}

FaultPlan make_fault_plan(double loss, double duplicate,
                          std::size_t crash_count, std::size_t num_nodes,
                          std::uint64_t horizon, std::uint64_t seed) {
  FaultPlan plan;
  plan.loss = loss;
  plan.duplicate = duplicate;
  crash_count = std::min(crash_count, num_nodes);
  if (crash_count > 0) {
    std::uint64_t state = seed ^ 0xFA17B0A7DULL;
    Rng rng(splitmix64(state));
    auto victims = rng.permutation(num_nodes);
    victims.resize(crash_count);
    std::sort(victims.begin(), victims.end());
    plan.crashes.reserve(crash_count);
    for (const std::size_t v : victims) {
      plan.crashes.push_back({static_cast<port::NodeId>(v),
                              1 + rng.below(horizon == 0 ? 1 : horizon)});
    }
  }
  return plan;
}

std::string format_fault_log(const std::vector<FaultEvent>& log) {
  std::ostringstream os;
  for (const auto& e : log) {
    os << "t=" << e.time << ' ';
    switch (e.kind) {
      case FaultKind::kLoss:
        os << "loss (" << e.node << ',' << e.port << ") r" << e.round;
        break;
      case FaultKind::kDuplicate:
        os << "dup (" << e.node << ',' << e.port << ") r" << e.round;
        break;
      case FaultKind::kCrash:
        os << "crash node " << e.node;
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace eds::runtime
