#include "runtime/fault.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace eds::runtime {

namespace {

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(spec);
  while (std::getline(is, part, ':')) parts.push_back(part);
  return parts;
}

std::uint64_t parse_ticks(const std::string& text, const std::string& spec) {
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument("parse_delay_model: bad tick count '" + text +
                          "' in '" + spec + "'");
  }
}

}  // namespace

DelayModel parse_delay_model(const std::string& spec) {
  const auto parts = split_spec(spec);
  DelayModel model;
  if (parts.size() == 2 && parts[0] == "fixed") {
    model.kind = DelayKind::kFixed;
    model.a = model.b = parse_ticks(parts[1], spec);
  } else if (parts.size() == 3 && parts[0] == "uniform") {
    model.kind = DelayKind::kUniform;
    model.a = parse_ticks(parts[1], spec);
    model.b = parse_ticks(parts[2], spec);
  } else if ((parts.size() == 2 || parts.size() == 3) &&
             parts[0] == "geometric") {
    model.kind = DelayKind::kGeometric;
    model.a = parse_ticks(parts[1], spec);
    model.b = parts.size() == 3 ? parse_ticks(parts[2], spec) : 8 * model.a;
  } else {
    throw InvalidArgument(
        "parse_delay_model: expected fixed:T, uniform:LO:HI or "
        "geometric:MEAN[:CAP], got '" +
        spec + "'");
  }
  if (model.a == 0 || model.b == 0) {
    throw InvalidArgument("parse_delay_model: delays must be >= 1 in '" +
                          spec + "'");
  }
  if (model.a > model.b) {
    throw InvalidArgument("parse_delay_model: lower bound exceeds upper in '" +
                          spec + "'");
  }
  return model;
}

std::string format_delay_model(const DelayModel& model) {
  std::ostringstream os;
  switch (model.kind) {
    case DelayKind::kFixed:
      os << "fixed:" << model.a;
      break;
    case DelayKind::kUniform:
      os << "uniform:" << model.a << ':' << model.b;
      break;
    case DelayKind::kGeometric:
      os << "geometric:" << model.a << ':' << model.b;
      break;
  }
  return os.str();
}

FaultPlan make_fault_plan(double loss, double duplicate,
                          std::size_t crash_count, std::size_t num_nodes,
                          std::uint64_t horizon, std::uint64_t seed) {
  FaultPlan plan;
  plan.loss = loss;
  plan.duplicate = duplicate;
  crash_count = std::min(crash_count, num_nodes);
  if (crash_count > 0) {
    std::uint64_t state = seed ^ 0xFA17B0A7DULL;
    Rng rng(splitmix64(state));
    auto victims = rng.permutation(num_nodes);
    victims.resize(crash_count);
    std::sort(victims.begin(), victims.end());
    plan.crashes.reserve(crash_count);
    for (const std::size_t v : victims) {
      plan.crashes.push_back({static_cast<port::NodeId>(v),
                              1 + rng.below(horizon == 0 ? 1 : horizon)});
    }
  }
  return plan;
}

namespace {

/// Parses one probability token of a replay file.
double parse_prob(const std::string& text, const std::string& key) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size() || value < 0.0 || value > 1.0) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument("decode_replay: bad probability '" + text +
                          "' for '" + key + "'");
  }
}

std::uint64_t parse_u64(const std::string& text, const std::string& key) {
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument("decode_replay: bad number '" + text + "' for '" +
                          key + "'");
  }
}

}  // namespace

std::string encode_replay(const ReplayFile& replay) {
  std::ostringstream os;
  os << "edsched " << kReplaySchemaVersion << '\n';
  os << "strategy " << replay.strategy << '\n';
  os << "algorithm " << replay.algorithm << '\n';
  os << "param " << replay.param << '\n';
  const AsyncOptions& a = replay.options;
  os << "synchronizer " << (a.synchronizer ? "on" : "off") << '\n';
  os << "delay " << format_delay_model(a.delay) << '\n';
  // max_digits10 makes the probabilities round-trip bit-exactly through the
  // text form — a replay must reproduce every loss draw.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "loss " << a.faults.loss << '\n';
  os << "dup " << a.faults.duplicate << '\n';
  os << "timeout " << a.round_timeout << '\n';
  os << "seed " << a.seed << '\n';
  for (const CrashEvent& c : a.faults.crashes) {
    os << "crash " << c.node << ' ' << c.time << '\n';
  }
  const Schedule& s = a.schedule;
  if (s.prio_seed != 0) os << "prioseed " << s.prio_seed << '\n';
  if (s.demote_ticks != 0) os << "demote " << s.demote_ticks << '\n';
  for (const std::uint64_t cp : s.change_points) os << "change " << cp << '\n';
  for (const DelayOverride& o : s.delay_overrides) {
    os << "override " << o.port << ' ' << o.ticks << '\n';
  }
  for (const auto& [name, value] : replay.metrics) {
    os << "metric " << name << ' ' << value << '\n';
  }
  os << "graph\n" << replay.graph_text;
  return os.str();
}

ReplayFile decode_replay(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) {
    throw InvalidArgument("decode_replay: empty input");
  }
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != "edsched" || version.empty()) {
      throw InvalidArgument(
          "decode_replay: not a replay file (expected an 'edsched " +
          std::to_string(kReplaySchemaVersion) + "' header)");
    }
    if (parse_u64(version, "edsched") != kReplaySchemaVersion) {
      throw InvalidArgument("decode_replay: schema mismatch: this build "
                            "speaks version " +
                            std::to_string(kReplaySchemaVersion) + ", got " +
                            version);
    }
  }
  ReplayFile replay;
  bool saw_graph = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "graph") {
      saw_graph = true;
      break;
    }
    std::istringstream record(line);
    std::string key;
    record >> key;
    const auto rest = [&record, &key, &line]() {
      std::string token;
      if (!(record >> token)) {
        throw InvalidArgument("decode_replay: record '" + line +
                              "' is missing a value for '" + key + "'");
      }
      return token;
    };
    if (key == "strategy") {
      replay.strategy = rest();
    } else if (key == "algorithm") {
      replay.algorithm = rest();
    } else if (key == "param") {
      replay.param = static_cast<std::uint32_t>(parse_u64(rest(), key));
    } else if (key == "synchronizer") {
      const auto token = rest();
      if (token != "on" && token != "off") {
        throw InvalidArgument("decode_replay: synchronizer takes on|off");
      }
      replay.options.synchronizer = token == "on";
    } else if (key == "delay") {
      replay.options.delay = parse_delay_model(rest());
    } else if (key == "loss") {
      replay.options.faults.loss = parse_prob(rest(), key);
    } else if (key == "dup") {
      replay.options.faults.duplicate = parse_prob(rest(), key);
    } else if (key == "timeout") {
      replay.options.round_timeout = parse_u64(rest(), key);
    } else if (key == "seed") {
      replay.options.seed = parse_u64(rest(), key);
    } else if (key == "crash") {
      CrashEvent c;
      c.node = static_cast<port::NodeId>(parse_u64(rest(), key));
      c.time = parse_u64(rest(), key);
      replay.options.faults.crashes.push_back(c);
    } else if (key == "prioseed") {
      replay.options.schedule.prio_seed = parse_u64(rest(), key);
    } else if (key == "demote") {
      replay.options.schedule.demote_ticks = parse_u64(rest(), key);
    } else if (key == "change") {
      replay.options.schedule.change_points.push_back(parse_u64(rest(), key));
    } else if (key == "override") {
      DelayOverride o;
      o.port = static_cast<std::uint32_t>(parse_u64(rest(), key));
      o.ticks = parse_u64(rest(), key);
      replay.options.schedule.delay_overrides.push_back(o);
    } else if (key == "metric") {
      const auto name = rest();
      replay.metrics.emplace_back(name, parse_u64(rest(), key));
    } else {
      throw InvalidArgument("decode_replay: unknown record '" + key + "'");
    }
  }
  if (!saw_graph) {
    throw InvalidArgument("decode_replay: missing 'graph' section");
  }
  std::ostringstream graph_text;
  graph_text << is.rdbuf();
  replay.graph_text = graph_text.str();
  if (replay.algorithm.empty()) {
    throw InvalidArgument("decode_replay: missing 'algorithm' record");
  }
  return replay;
}

std::string format_fault_log(const std::vector<FaultEvent>& log) {
  std::ostringstream os;
  for (const auto& e : log) {
    os << "t=" << e.time << ' ';
    switch (e.kind) {
      case FaultKind::kLoss:
        os << "loss (" << e.node << ',' << e.port << ") r" << e.round;
        break;
      case FaultKind::kDuplicate:
        os << "dup (" << e.node << ',' << e.port << ") r" << e.round;
        break;
      case FaultKind::kCrash:
        os << "crash node " << e.node;
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace eds::runtime
