#include "runtime/sched.hpp"

#include <algorithm>
#include <tuple>

#include "util/rng.hpp"

namespace eds::runtime {

namespace {

/// Same order-independent hash draw the async engine uses; the salts here
/// (16+) are disjoint from the engine's (1–5) so a search never correlates
/// with the runs it drives.
std::uint64_t draw_bits(std::uint64_t seed, std::uint64_t x, std::uint64_t y,
                        std::uint64_t salt) {
  std::uint64_t state = seed;
  state = splitmix64(state) ^ (x + 0x9E3779B97F4A7C15ULL * salt);
  state = splitmix64(state) ^ y;
  return splitmix64(state);
}

/// Lexicographic badness: inconsistency dominates (a consistency violation
/// is the strongest witness), then the selection size (the ratio
/// numerator), then latency, then rounds.  The hill-climb maximizes this;
/// AdversaryReport::primary follows the same precedence.
std::array<std::uint64_t, 4> score_of(const ScheduleMetrics& m) {
  return {m.inconsistent, m.selected, m.virtual_time, m.rounds};
}

void keep_worst(ScheduleWitness& slot, std::uint64_t& slot_value,
                const ScheduleWitness& candidate, std::uint64_t value) {
  if (value > slot_value) {
    slot = candidate;
    slot_value = value;
  }
}

}  // namespace

std::string adversary_token(AdversaryStrategy strategy) {
  switch (strategy) {
    case AdversaryStrategy::kRandom:
      return "random";
    case AdversaryStrategy::kPct:
      return "pct";
    case AdversaryStrategy::kDelay:
      return "delay";
    case AdversaryStrategy::kClimb:
      return "climb";
  }
  return "random";  // unreachable
}

std::optional<AdversaryStrategy> adversary_from_token(
    const std::string& token) {
  if (token == "random") return AdversaryStrategy::kRandom;
  if (token == "pct") return AdversaryStrategy::kPct;
  if (token == "delay") return AdversaryStrategy::kDelay;
  if (token == "climb") return AdversaryStrategy::kClimb;
  return std::nullopt;
}

std::string metric_token(AdversaryMetric metric) {
  switch (metric) {
    case AdversaryMetric::kRounds:
      return "rounds";
    case AdversaryMetric::kVirtualTime:
      return "time";
    case AdversaryMetric::kSelected:
      return "selected";
    case AdversaryMetric::kInconsistent:
      return "inconsistent";
  }
  return "rounds";  // unreachable
}

std::optional<AdversaryMetric> metric_from_token(const std::string& token) {
  if (token == "rounds") return AdversaryMetric::kRounds;
  if (token == "time") return AdversaryMetric::kVirtualTime;
  if (token == "selected") return AdversaryMetric::kSelected;
  if (token == "inconsistent") return AdversaryMetric::kInconsistent;
  return std::nullopt;
}

std::uint64_t metric_value(const ScheduleMetrics& metrics,
                           AdversaryMetric metric) {
  switch (metric) {
    case AdversaryMetric::kRounds:
      return metrics.rounds;
    case AdversaryMetric::kVirtualTime:
      return metrics.virtual_time;
    case AdversaryMetric::kSelected:
      return metrics.selected;
    case AdversaryMetric::kInconsistent:
      return metrics.inconsistent;
  }
  return 0;  // unreachable
}

ScheduleMetrics measure_schedule(const port::PortGraph& g,
                                 const AsyncResult& result) {
  if (result.run.outputs.size() != g.num_nodes()) {
    throw InvalidArgument(
        "measure_schedule: result does not match the graph's node count");
  }
  ScheduleMetrics m;
  m.rounds = result.run.stats.rounds;
  m.virtual_time = result.async.virtual_time;
  for (port::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Port i : result.run.outputs[v]) {
      const port::PortRef partner = g.partner(v, i);
      if (partner.node == v && partner.port == i) {
        ++m.selected;  // directed loop: trivially self-consistent
        continue;
      }
      const auto& other = result.run.outputs[partner.node];
      const bool claimed =
          std::binary_search(other.begin(), other.end(), partner.port);
      if (!claimed) {
        ++m.inconsistent;
      } else if (std::tie(v, i) < std::tie(partner.node, partner.port)) {
        ++m.selected;  // count each two-sided edge once, from the low side
      }
    }
  }
  return m;
}

const ScheduleWitness& AdversaryReport::primary() const {
  switch (primary_metric()) {
    case AdversaryMetric::kInconsistent:
      return worst_inconsistent;
    case AdversaryMetric::kSelected:
      return worst_selected;
    default:
      return worst_time;
  }
}

AdversaryMetric AdversaryReport::primary_metric() const {
  if (worst_inconsistent.metrics.inconsistent > 0) {
    return AdversaryMetric::kInconsistent;
  }
  if (worst_selected.metrics.selected > 0) return AdversaryMetric::kSelected;
  return AdversaryMetric::kVirtualTime;
}

AdversarialScheduler::AdversarialScheduler(AdversaryStrategy strategy,
                                           AsyncOptions base,
                                           std::uint64_t seed,
                                           std::size_t total_ports,
                                           std::uint64_t horizon)
    : strategy_(strategy),
      base_(std::move(base)),
      seed_(seed),
      total_ports_(total_ports),
      horizon_(std::max<std::uint64_t>(horizon, 1)),
      best_(base_) {
  // The delay-bounded envelope: with an explicit round timeout a forced
  // delay may exceed it (that is the interesting region — a late message
  // becomes silence at the receiver), otherwise twice the model's maximum
  // (reordering and stretching without starving the auto timeout).
  const std::uint64_t max_delay = base_.delay.max_delay();
  delay_bound_ = base_.round_timeout != 0
                     ? base_.round_timeout + max_delay
                     : 2 * max_delay;
  delay_bound_ = std::max<std::uint64_t>(delay_bound_, 1);
}

AsyncOptions AdversarialScheduler::propose(std::size_t step) const {
  AsyncOptions o = base_;
  if (step == 0) return o;  // probe 0: the unperturbed base, every strategy
  switch (strategy_) {
    case AdversaryStrategy::kRandom: {
      // Fresh run seed per probe: new delay matrix, new fault draws.
      o.seed = draw_bits(seed_, step, 0, /*salt=*/16);
      break;
    }
    case AdversaryStrategy::kPct: {
      Schedule& s = o.schedule;
      s.prio_seed = draw_bits(seed_, step, 1, /*salt=*/17) | 1;  // non-zero
      s.demote_ticks = 1 + draw_bits(seed_, step, 2, /*salt=*/17) %
                               delay_bound_;
      const std::size_t d = 1 + step % 4;  // cycle the PCT depth 1..4
      s.change_points.reserve(d);
      for (std::size_t k = 0; k < d; ++k) {
        s.change_points.push_back(
            1 + draw_bits(seed_, step, 3 + k, /*salt=*/17) % horizon_);
      }
      break;
    }
    case AdversaryStrategy::kDelay: {
      Schedule& s = o.schedule;
      for (std::size_t q = 0; q < total_ports_; ++q) {
        const std::uint64_t bits = draw_bits(seed_, step, q, /*salt=*/18);
        if ((bits & 1) == 0) continue;  // perturb ~half the links
        s.delay_overrides.push_back(
            {static_cast<std::uint32_t>(q), 1 + (bits >> 1) % delay_bound_});
      }
      break;
    }
    case AdversaryStrategy::kClimb: {
      // Mutate the incumbent: 1–3 edits drawn from the same move set the
      // other strategies cover, so the climb can reach any of their
      // schedules one step at a time.
      o = best_;
      Schedule& s = o.schedule;
      const std::size_t edits = 1 + draw_bits(seed_, step, 0, /*salt=*/19) % 3;
      for (std::size_t e = 0; e < edits; ++e) {
        const std::uint64_t roll = draw_bits(seed_, step, 100 + e, /*salt=*/19);
        switch (roll % 5) {
          case 0: {  // force a random link
            const auto q = static_cast<std::uint32_t>(
                total_ports_ == 0 ? 0 : (roll >> 8) % total_ports_);
            const std::uint64_t ticks = 1 + (roll >> 40) % delay_bound_;
            auto it = std::find_if(
                s.delay_overrides.begin(), s.delay_overrides.end(),
                [q](const DelayOverride& d) { return d.port == q; });
            if (it != s.delay_overrides.end()) {
              it->ticks = ticks;
            } else {
              s.delay_overrides.push_back({q, ticks});
            }
            break;
          }
          case 1: {  // release a forced link
            if (!s.delay_overrides.empty()) {
              s.delay_overrides.erase(s.delay_overrides.begin() +
                                      (roll >> 8) % s.delay_overrides.size());
            }
            break;
          }
          case 2: {  // re-seed the priority lane
            s.prio_seed = (roll >> 8) | 1;
            if (s.demote_ticks == 0) {
              s.demote_ticks = 1 + (roll >> 40) % delay_bound_;
            }
            break;
          }
          case 3: {  // add a change point (needs a priority lane)
            if (s.prio_seed == 0) s.prio_seed = (roll >> 8) | 1;
            if (s.demote_ticks == 0) {
              s.demote_ticks = 1 + (roll >> 40) % delay_bound_;
            }
            s.change_points.push_back(1 + (roll >> 8) % horizon_);
            break;
          }
          case 4: {  // drop a change point
            if (!s.change_points.empty()) {
              s.change_points.erase(s.change_points.begin() +
                                    (roll >> 8) % s.change_points.size());
            }
            break;
          }
        }
      }
      break;
    }
  }
  return o;
}

void AdversarialScheduler::observe(std::size_t step,
                                   const AsyncOptions& options,
                                   const ScheduleMetrics& metrics) {
  (void)step;
  if (strategy_ != AdversaryStrategy::kClimb) return;
  const auto score = score_of(metrics);
  // >= lets the climb drift across plateaus instead of pinning to probe 0.
  if (!have_best_ || score >= best_score_) {
    best_ = options;
    best_score_ = score;
    have_best_ = true;
  }
}

AdversaryReport adversary_search(const port::PortGraph& g,
                                 const ProgramFactory& factory,
                                 AdversaryStrategy strategy,
                                 const AsyncOptions& base, std::size_t budget,
                                 std::uint64_t seed,
                                 const RunOptions& run_options) {
  if (base.synchronizer) {
    throw InvalidArgument(
        "adversary_search: the α-synchronizer is schedule-oblivious (its "
        "outputs are bit-identical to the synchronous engine for every "
        "delay matrix); search the free-running mode instead");
  }
  if (budget == 0) {
    throw InvalidArgument("adversary_search: budget must be >= 1");
  }

  // Probe 0 (the unperturbed base) also calibrates the change-point
  // horizon; until it lands, a structural estimate stands in.
  std::uint64_t horizon = 4 * std::max<std::size_t>(g.num_ports(), 1);
  AdversaryReport report;
  std::uint64_t worst_rounds = 0;
  std::uint64_t worst_time = 0;
  std::uint64_t worst_selected = 0;
  std::uint64_t worst_inconsistent = 0;
  bool first = true;

  AdversarialScheduler scheduler(strategy, base, seed, g.num_ports(),
                                 horizon);
  for (std::size_t step = 0; step < budget; ++step) {
    AsyncOptions options = scheduler.propose(step);
    ScheduleWitness witness;
    witness.options = options;
    try {
      witness.result = run_asynchronous(g, factory, run_options, options);
    } catch (const Error&) {
      ++report.failures;
      continue;
    }
    witness.metrics = measure_schedule(g, witness.result);
    scheduler.observe(step, options, witness.metrics);
    ++report.evaluated;
    if (step == 0) {
      horizon = std::max<std::uint64_t>(witness.result.async.events, 1);
      // Re-arm the generator with the calibrated horizon; probe 0 itself
      // is schedule-free, so this changes nothing already evaluated.
      scheduler = AdversarialScheduler(strategy, base, seed, g.num_ports(),
                                       horizon);
      scheduler.observe(0, options, witness.metrics);
    }
    if (first) {
      report.worst_rounds = witness;
      report.worst_time = witness;
      report.worst_selected = witness;
      report.worst_inconsistent = witness;
      worst_rounds = witness.metrics.rounds;
      worst_time = witness.metrics.virtual_time;
      worst_selected = witness.metrics.selected;
      worst_inconsistent = witness.metrics.inconsistent;
      first = false;
      continue;
    }
    keep_worst(report.worst_rounds, worst_rounds, witness,
               witness.metrics.rounds);
    keep_worst(report.worst_time, worst_time, witness,
               witness.metrics.virtual_time);
    keep_worst(report.worst_selected, worst_selected, witness,
               witness.metrics.selected);
    keep_worst(report.worst_inconsistent, worst_inconsistent, witness,
               witness.metrics.inconsistent);
  }
  if (first) {
    throw ExecutionError(
        "adversary_search: every probe failed — no witness to report");
  }
  return report;
}

namespace {

/// One shrink probe: does `schedule` still reach `target` on `metric`?
std::optional<ScheduleWitness> shrink_probe(
    const port::PortGraph& g, const ProgramFactory& factory,
    const AsyncOptions& base, const Schedule& schedule, AdversaryMetric metric,
    std::uint64_t target, const RunOptions& run_options) {
  AsyncOptions options = base;
  options.schedule = schedule;
  ScheduleWitness witness;
  witness.options = options;
  try {
    witness.result = run_asynchronous(g, factory, run_options, options);
  } catch (const Error&) {
    return std::nullopt;
  }
  witness.metrics = measure_schedule(g, witness.result);
  if (metric_value(witness.metrics, metric) < target) return std::nullopt;
  return witness;
}

/// ddmin-style list minimization: repeatedly try dropping chunks (halving
/// the chunk size down to single elements), keeping any drop that still
/// reproduces.  `apply` writes a candidate list into a Schedule; `check`
/// probes it.  Quadratic worst case on tiny lists — fine for schedules.
template <typename T, typename Apply, typename Check>
std::vector<T> minimize_list(std::vector<T> items, const Apply& apply,
                             const Check& check) {
  std::size_t chunk = items.size();
  while (chunk >= 1 && !items.empty()) {
    bool dropped = false;
    for (std::size_t start = 0; start < items.size();) {
      std::vector<T> candidate;
      candidate.reserve(items.size());
      const std::size_t stop = std::min(items.size(), start + chunk);
      candidate.insert(candidate.end(), items.begin(),
                       items.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       items.begin() + static_cast<std::ptrdiff_t>(stop),
                       items.end());
      if (check(apply(candidate))) {
        items = std::move(candidate);
        dropped = true;
        // `start` stays: the next chunk slid into this position.
      } else {
        start += chunk;
      }
    }
    if (!dropped || chunk == 1) chunk /= 2;
  }
  return items;
}

}  // namespace

ScheduleWitness shrink_witness(const port::PortGraph& g,
                               const ProgramFactory& factory,
                               const ScheduleWitness& witness,
                               AdversaryMetric metric,
                               const RunOptions& run_options) {
  const std::uint64_t target = metric_value(witness.metrics, metric);
  Schedule current = witness.options.schedule;
  const auto reproduces = [&](const Schedule& candidate) {
    return shrink_probe(g, factory, witness.options, candidate, metric,
                        target, run_options)
        .has_value();
  };

  // Lane drops first: each lane gone is a big bite out of the reproducer.
  {
    Schedule candidate = current;
    candidate.change_points.clear();
    if (reproduces(candidate)) current = std::move(candidate);
  }
  {
    Schedule candidate = current;
    candidate.delay_overrides.clear();
    if (reproduces(candidate)) current = std::move(candidate);
  }
  if (current.change_points.empty() && current.prio_seed != 0) {
    Schedule candidate = current;
    candidate.prio_seed = 0;
    candidate.demote_ticks = 0;
    if (reproduces(candidate)) current = std::move(candidate);
  }

  // ddmin over the surviving lists.
  current.change_points = minimize_list(
      current.change_points,
      [&](const std::vector<std::uint64_t>& cps) {
        Schedule candidate = current;
        candidate.change_points = cps;
        return candidate;
      },
      reproduces);
  current.delay_overrides = minimize_list(
      current.delay_overrides,
      [&](const std::vector<DelayOverride>& overrides) {
        Schedule candidate = current;
        candidate.delay_overrides = overrides;
        return candidate;
      },
      reproduces);
  if (current.change_points.empty() && current.prio_seed != 0) {
    Schedule candidate = current;
    candidate.prio_seed = 0;
    candidate.demote_ticks = 0;
    if (reproduces(candidate)) current = std::move(candidate);
  }

  // Re-measure the shrunk schedule so the returned witness records exactly
  // what a replay of it will observe.
  auto final_witness = shrink_probe(g, factory, witness.options, current,
                                    metric, target, run_options);
  if (!final_witness) {
    // Unreachable (the shrink only keeps reproducing candidates); fall back
    // to the original witness rather than crash a search that found a bug.
    return witness;
  }
  return std::move(*final_witness);
}

}  // namespace eds::runtime
