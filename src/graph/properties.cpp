#include "graph/properties.hpp"

#include <algorithm>

namespace eds::graph {

std::vector<std::size_t> connected_components(const SimpleGraph& g) {
  constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
  std::vector<std::size_t> comp(g.num_nodes(), kUnseen);
  std::size_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != kUnseen) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const auto& inc : g.incidences(v)) {
        if (comp[inc.neighbour] == kUnseen) {
          comp[inc.neighbour] = next;
          stack.push_back(inc.neighbour);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::size_t num_components(const SimpleGraph& g) {
  const auto comp = connected_components(g);
  if (comp.empty()) return 0;
  return *std::max_element(comp.begin(), comp.end()) + 1;
}

bool is_connected(const SimpleGraph& g) { return num_components(g) <= 1; }

std::optional<std::vector<int>> bipartition(const SimpleGraph& g) {
  std::vector<int> colour(g.num_nodes(), -1);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (colour[s] != -1) continue;
    colour[s] = 0;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const auto& inc : g.incidences(v)) {
        if (colour[inc.neighbour] == -1) {
          colour[inc.neighbour] = 1 - colour[v];
          stack.push_back(inc.neighbour);
        } else if (colour[inc.neighbour] == colour[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return colour;
}

bool is_bipartite(const SimpleGraph& g) { return bipartition(g).has_value(); }

std::vector<std::size_t> degree_histogram(const SimpleGraph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

bool is_forest(const SimpleGraph& g) {
  // A graph is a forest iff m = n - (number of components).
  return g.num_edges() + num_components(g) == g.num_nodes();
}

}  // namespace eds::graph
