// Plain-text graph serialisation.
//
// Format: first line "n m", then m lines "u v" (0-based endpoints).
// Lines starting with '#' are comments and ignored on input.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/simple_graph.hpp"

namespace eds::graph {

/// Writes `g` in edge-list format.
void write_edge_list(std::ostream& os, const SimpleGraph& g);

/// Reads a graph in edge-list format; throws InvalidStructure on malformed
/// input (wrong counts, out-of-range endpoints, loops, duplicates).
[[nodiscard]] SimpleGraph read_edge_list(std::istream& is);

/// Serialises to a string (convenience wrapper around write_edge_list).
[[nodiscard]] std::string to_edge_list_string(const SimpleGraph& g);

/// Parses from a string (convenience wrapper around read_edge_list).
[[nodiscard]] SimpleGraph from_edge_list_string(const std::string& text);

/// Writes Graphviz DOT, optionally highlighting a solution: edges in
/// `highlight` are drawn bold/red.  `highlight` may be null.
void write_dot(std::ostream& os, const SimpleGraph& g,
               const class EdgeSet* highlight = nullptr,
               const std::string& name = "G");

}  // namespace eds::graph
