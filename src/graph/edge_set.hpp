// A set of edges of a fixed SimpleGraph, keyed by edge id.
//
// EdgeSet is the common currency for solutions: algorithm outputs, matchings,
// edge covers and edge dominating sets are all EdgeSets over the same graph.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/simple_graph.hpp"

namespace eds::graph {

/// A subset of the edges of a graph with m edges, with O(1) membership and
/// O(m) iteration.  Cheap to copy for laptop-scale graphs.
class EdgeSet {
 public:
  EdgeSet() = default;

  /// Empty set over a universe of `num_edges` edge ids.
  explicit EdgeSet(std::size_t num_edges) : member_(num_edges, false) {}

  /// Set containing exactly `edges` over a universe of `num_edges` ids.
  EdgeSet(std::size_t num_edges, const std::vector<EdgeId>& edges);

  [[nodiscard]] std::size_t universe_size() const noexcept {
    return member_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] bool contains(EdgeId e) const { return member_.at(e); }

  /// Inserts `e`; returns true if it was not already present.
  bool insert(EdgeId e);

  /// Removes `e`; returns true if it was present.
  bool erase(EdgeId e);

  /// All member edge ids in increasing order.
  [[nodiscard]] std::vector<EdgeId> to_vector() const;

  /// Set union / intersection / difference (universes must match).
  [[nodiscard]] EdgeSet set_union(const EdgeSet& rhs) const;
  [[nodiscard]] EdgeSet set_intersection(const EdgeSet& rhs) const;
  [[nodiscard]] EdgeSet set_difference(const EdgeSet& rhs) const;

  [[nodiscard]] bool operator==(const EdgeSet& rhs) const = default;

 private:
  void check_same_universe(const EdgeSet& rhs) const;

  std::vector<bool> member_;
  std::size_t count_ = 0;
};

/// Number of member edges incident to `v` in `g`.
[[nodiscard]] std::size_t degree_in_set(const SimpleGraph& g, const EdgeSet& s,
                                        NodeId v);

/// True when some member edge covers `v` (i.e. is incident to it).
[[nodiscard]] bool covers_node(const SimpleGraph& g, const EdgeSet& s,
                               NodeId v);

}  // namespace eds::graph
