#include "graph/edge_set.hpp"

namespace eds::graph {

EdgeSet::EdgeSet(std::size_t num_edges, const std::vector<EdgeId>& edges)
    : EdgeSet(num_edges) {
  for (EdgeId e : edges) insert(e);
}

bool EdgeSet::insert(EdgeId e) {
  if (member_.at(e)) return false;
  member_[e] = true;
  ++count_;
  return true;
}

bool EdgeSet::erase(EdgeId e) {
  if (!member_.at(e)) return false;
  member_[e] = false;
  --count_;
  return true;
}

std::vector<EdgeId> EdgeSet::to_vector() const {
  std::vector<EdgeId> out;
  out.reserve(count_);
  for (std::size_t e = 0; e < member_.size(); ++e) {
    if (member_[e]) out.push_back(static_cast<EdgeId>(e));
  }
  return out;
}

void EdgeSet::check_same_universe(const EdgeSet& rhs) const {
  if (universe_size() != rhs.universe_size()) {
    throw InvalidArgument("EdgeSet: mismatched universes");
  }
}

EdgeSet EdgeSet::set_union(const EdgeSet& rhs) const {
  check_same_universe(rhs);
  EdgeSet out(universe_size());
  for (std::size_t e = 0; e < member_.size(); ++e) {
    if (member_[e] || rhs.member_[e]) out.insert(static_cast<EdgeId>(e));
  }
  return out;
}

EdgeSet EdgeSet::set_intersection(const EdgeSet& rhs) const {
  check_same_universe(rhs);
  EdgeSet out(universe_size());
  for (std::size_t e = 0; e < member_.size(); ++e) {
    if (member_[e] && rhs.member_[e]) out.insert(static_cast<EdgeId>(e));
  }
  return out;
}

EdgeSet EdgeSet::set_difference(const EdgeSet& rhs) const {
  check_same_universe(rhs);
  EdgeSet out(universe_size());
  for (std::size_t e = 0; e < member_.size(); ++e) {
    if (member_[e] && !rhs.member_[e]) out.insert(static_cast<EdgeId>(e));
  }
  return out;
}

std::size_t degree_in_set(const SimpleGraph& g, const EdgeSet& s, NodeId v) {
  std::size_t deg = 0;
  for (const auto& inc : g.incidences(v)) {
    if (s.contains(inc.edge)) ++deg;
  }
  return deg;
}

bool covers_node(const SimpleGraph& g, const EdgeSet& s, NodeId v) {
  for (const auto& inc : g.incidences(v)) {
    if (s.contains(inc.edge)) return true;
  }
  return false;
}

}  // namespace eds::graph
