#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace eds::graph {

namespace {

NodeId nid(std::size_t v) { return static_cast<NodeId>(v); }

}  // namespace

SimpleGraph path(std::size_t n) {
  if (n < 1) throw InvalidArgument("path: need n >= 1");
  GraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) b.add_edge(nid(i), nid(i + 1));
  return b.build();
}

SimpleGraph cycle(std::size_t n) {
  if (n < 3) throw InvalidArgument("cycle: need n >= 3");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) b.add_edge(nid(i), nid((i + 1) % n));
  return b.build();
}

SimpleGraph complete(std::size_t n) {
  if (n < 1) throw InvalidArgument("complete: need n >= 1");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) b.add_edge(nid(i), nid(j));
  }
  return b.build();
}

SimpleGraph complete_bipartite(std::size_t a, std::size_t b) {
  if (a < 1 || b < 1) throw InvalidArgument("complete_bipartite: empty side");
  GraphBuilder builder(a + b);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < b; ++j) builder.add_edge(nid(i), nid(a + j));
  }
  return builder.build();
}

SimpleGraph star(std::size_t leaves) {
  GraphBuilder b(leaves + 1);
  for (std::size_t i = 1; i <= leaves; ++i) b.add_edge(0, nid(i));
  return b.build();
}

SimpleGraph crown(std::size_t n) {
  if (n < 1) throw InvalidArgument("crown: need n >= 1");
  GraphBuilder b(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) b.add_edge(nid(i), nid(n + j));
    }
  }
  return b.build();
}

SimpleGraph hypercube(std::size_t dim) {
  if (dim < 1 || dim > 20) throw InvalidArgument("hypercube: dim out of range");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < dim; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (v < u) b.add_edge(nid(v), nid(u));
    }
  }
  return b.build();
}

SimpleGraph grid(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) throw InvalidArgument("grid: empty dimension");
  GraphBuilder b(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return b.build();
}

SimpleGraph torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3) {
    throw InvalidArgument("torus: need rows, cols >= 3 for a simple graph");
  }
  GraphBuilder b(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      b.add_edge(at(r, c), at(r, (c + 1) % cols));
      b.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return b.build();
}

SimpleGraph circulant(std::size_t n, const std::vector<std::size_t>& offsets) {
  if (n < 3) throw InvalidArgument("circulant: need n >= 3");
  std::set<std::size_t> seen;
  for (std::size_t off : offsets) {
    if (off < 1 || off > n / 2) {
      throw InvalidArgument("circulant: offsets must lie in [1, n/2]");
    }
    if (!seen.insert(off).second) {
      throw InvalidArgument("circulant: duplicate offset");
    }
  }
  GraphBuilder b(n);
  for (std::size_t off : offsets) {
    if (2 * off == n) {
      for (std::size_t v = 0; v < n / 2; ++v) b.add_edge(nid(v), nid(v + off));
    } else {
      for (std::size_t v = 0; v < n; ++v) b.add_edge(nid(v), nid((v + off) % n));
    }
  }
  return b.build();
}

SimpleGraph petersen() {
  GraphBuilder b(10);
  for (std::size_t i = 0; i < 5; ++i) {
    b.add_edge(nid(i), nid((i + 1) % 5));      // outer cycle
    b.add_edge(nid(5 + i), nid(5 + (i + 2) % 5));  // inner pentagram
    b.add_edge(nid(i), nid(5 + i));            // spokes
  }
  return b.build();
}

SimpleGraph prism(std::size_t n) {
  if (n < 3) throw InvalidArgument("prism: need n >= 3");
  GraphBuilder b(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(nid(i), nid((i + 1) % n));          // outer cycle
    b.add_edge(nid(n + i), nid(n + (i + 1) % n));  // inner cycle
    b.add_edge(nid(i), nid(n + i));                // rungs
  }
  return b.build();
}

SimpleGraph moebius_ladder(std::size_t n) {
  if (n < 2) throw InvalidArgument("moebius_ladder: need n >= 2");
  GraphBuilder b(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    b.add_edge(nid(i), nid((i + 1) % (2 * n)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(nid(i), nid(i + n));
  }
  return b.build();
}

SimpleGraph wheel(std::size_t n) {
  if (n < 3) throw InvalidArgument("wheel: need n >= 3");
  GraphBuilder b(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(nid(i), nid((i + 1) % n));
    b.add_edge(nid(i), nid(n));  // hub
  }
  return b.build();
}

SimpleGraph complete_multipartite(const std::vector<std::size_t>& parts) {
  if (parts.empty()) throw InvalidArgument("complete_multipartite: no parts");
  std::size_t n = 0;
  std::vector<std::size_t> part_of;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (parts[p] == 0) {
      throw InvalidArgument("complete_multipartite: empty part");
    }
    for (std::size_t i = 0; i < parts[p]; ++i) part_of.push_back(p);
    n += parts[p];
  }
  GraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (part_of[u] != part_of[v]) b.add_edge(nid(u), nid(v));
    }
  }
  return b.build();
}

SimpleGraph barbell(std::size_t m, std::size_t bridge) {
  if (m < 3) throw InvalidArgument("barbell: need clique size >= 3");
  const std::size_t n = 2 * m + (bridge > 0 ? bridge - 1 : 0);
  GraphBuilder b(n);
  auto clique = [&b](std::size_t base, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        b.add_edge(nid(base + i), nid(base + j));
      }
    }
  };
  clique(0, m);
  clique(m, m);
  if (bridge == 0) return b.build();
  // Path of `bridge` edges from node m-1 (first clique) to node m (second),
  // through bridge-1 fresh nodes placed after the cliques.
  NodeId prev = nid(m - 1);
  for (std::size_t i = 0; i + 1 < bridge; ++i) {
    const auto mid = nid(2 * m + i);
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, nid(m));
  return b.build();
}

SimpleGraph caterpillar(std::size_t spine, std::size_t legs_per_node) {
  if (spine < 1) throw InvalidArgument("caterpillar: need spine >= 1");
  GraphBuilder b(spine * (1 + legs_per_node));
  for (std::size_t i = 0; i + 1 < spine; ++i) b.add_edge(nid(i), nid(i + 1));
  for (std::size_t i = 0; i < spine; ++i) {
    for (std::size_t leg = 0; leg < legs_per_node; ++leg) {
      b.add_edge(nid(i), nid(spine + i * legs_per_node + leg));
    }
  }
  return b.build();
}

SimpleGraph random_tree(std::size_t n, Rng& rng) {
  if (n < 1) throw InvalidArgument("random_tree: need n >= 1");
  GraphBuilder b(n);
  // Random attachment over a random node relabelling gives a well-mixed tree
  // (not the uniform spanning tree distribution, but adequate for workloads).
  const auto label = rng.permutation(n);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<std::size_t>(rng.below(i));
    b.add_edge(nid(label[i]), nid(label[parent]));
  }
  return b.build();
}

namespace {

// Randomises an edge list in place with degree-preserving double-edge swaps:
// {a,b},{c,d} -> {a,c},{b,d} or {a,d},{b,c}, rejected when a swap would
// create a loop or a parallel edge (and, when `keep_bipartition` is set,
// when it would join two nodes of the same side).  This always succeeds,
// unlike configuration-model rejection, whose acceptance probability decays
// like exp(-Θ(d²)).
void double_edge_swaps(std::vector<Edge>& edges,
                       const std::vector<int>* side, Rng& rng) {
  if (edges.size() < 2) return;
  std::set<std::pair<NodeId, NodeId>> present;
  auto key = [](NodeId a, NodeId b) {
    return a < b ? std::pair(a, b) : std::pair(b, a);
  };
  for (const auto& e : edges) present.insert(key(e.u, e.v));

  const std::size_t attempts = 12 * edges.size();
  for (std::size_t it = 0; it < attempts; ++it) {
    const auto i = static_cast<std::size_t>(rng.below(edges.size()));
    const auto j = static_cast<std::size_t>(rng.below(edges.size()));
    if (i == j) continue;
    Edge e1 = edges[i];
    Edge e2 = edges[j];
    // Orient e2 at random so both swap variants are reachable.
    if (rng.chance(0.5)) std::swap(e2.u, e2.v);
    // Proposed replacement: {e1.u, e2.u} and {e1.v, e2.v}.
    const NodeId a = e1.u, b = e1.v, c = e2.u, dn = e2.v;
    if (a == c || b == dn || a == dn || b == c) continue;  // would self-loop
    if (side != nullptr &&
        (((*side)[a] == (*side)[c]) || ((*side)[b] == (*side)[dn]))) {
      continue;  // would break bipartiteness
    }
    if (present.count(key(a, c)) || present.count(key(b, dn))) continue;
    present.erase(key(e1.u, e1.v));
    present.erase(key(e2.u, e2.v));
    present.insert(key(a, c));
    present.insert(key(b, dn));
    edges[i] = {a, c};
    edges[j] = {b, dn};
  }
}

}  // namespace

SimpleGraph random_regular(std::size_t n, std::size_t d, Rng& rng) {
  if (d >= n) throw InvalidArgument("random_regular: need d < n");
  if ((n * d) % 2 != 0) {
    throw InvalidArgument("random_regular: n*d must be even");
  }
  if (d == 0) return SimpleGraph(n);

  // Deterministic d-regular seed: a circulant with offsets 1..floor(d/2),
  // plus the antipodal offset n/2 when d is odd (n is even then, since n*d
  // must be even).  Then mix with double-edge swaps.
  std::vector<std::size_t> offsets;
  for (std::size_t o = 1; o <= d / 2; ++o) offsets.push_back(o);
  if (d % 2 == 1) offsets.push_back(n / 2);
  std::vector<Edge> edges;
  for (const std::size_t off : offsets) {
    if (2 * off == n) {
      for (std::size_t v = 0; v < n / 2; ++v) {
        edges.push_back({nid(v), nid(v + off)});
      }
    } else {
      for (std::size_t v = 0; v < n; ++v) {
        edges.push_back({nid(v), nid((v + off) % n)});
      }
    }
  }
  double_edge_swaps(edges, nullptr, rng);
  auto g = SimpleGraph::from_edges(n, std::move(edges));
  EDS_ENSURE(g.is_regular(d), "random_regular: swaps broke regularity");
  return g;
}

SimpleGraph random_bounded_degree(std::size_t n, std::size_t max_degree,
                                  std::size_t target_edges, Rng& rng) {
  if (n < 2) throw InvalidArgument("random_bounded_degree: need n >= 2");
  if (max_degree < 1) {
    throw InvalidArgument("random_bounded_degree: need max_degree >= 1");
  }
  std::vector<std::size_t> degree(n, 0);
  std::set<std::pair<NodeId, NodeId>> seen;
  std::vector<Edge> edges;
  const std::size_t cap = std::min(target_edges, n * max_degree / 2);
  // Random pair sampling; the attempt budget is generous enough that the
  // generator fills the budget except when the degree cap makes it infeasible.
  const std::size_t attempts = 20 * cap + 100;
  for (std::size_t it = 0; it < attempts && edges.size() < cap; ++it) {
    auto u = nid(rng.below(n));
    auto v = nid(rng.below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (degree[u] >= max_degree || degree[v] >= max_degree) continue;
    if (!seen.emplace(u, v).second) continue;
    edges.push_back({u, v});
    ++degree[u];
    ++degree[v];
  }
  return SimpleGraph::from_edges(n, std::move(edges));
}

SimpleGraph random_power_law(std::size_t n, double exponent, Rng& rng,
                             std::size_t max_degree) {
  if (n < 2) throw InvalidArgument("random_power_law: need n >= 2");
  if (!(exponent > 0.0)) {
    throw InvalidArgument("random_power_law: need exponent > 0");
  }
  if (max_degree == 0) {
    max_degree = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  max_degree = std::min(max_degree, n - 1);

  // Target degrees by inverse-CDF sampling over the truncated power law
  // P(d) ∝ d^-exponent, d in [1, max_degree].
  std::vector<double> cdf(max_degree);
  double total = 0.0;
  for (std::size_t d = 1; d <= max_degree; ++d) {
    total += std::pow(static_cast<double>(d), -exponent);
    cdf[d - 1] = total;
  }
  std::vector<std::size_t> target(n);
  std::size_t stub_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const double u = rng.uniform01() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    target[v] = static_cast<std::size_t>(it - cdf.begin()) + 1;
    stub_count += target[v];
  }
  // Even-ize the stub count so the configuration model can pair everything,
  // without breaching the cap: bump a node still below max_degree, or (all
  // nodes at the cap already) drop a stub from a node with more than one.
  if (stub_count % 2 != 0) {
    const auto start = static_cast<std::size_t>(rng.below(n));
    bool bumped = false;
    for (std::size_t k = 0; k < n && !bumped; ++k) {
      const std::size_t v = (start + k) % n;
      if (target[v] < max_degree) {
        ++target[v];
        ++stub_count;
        bumped = true;
      }
    }
    if (!bumped) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t v = (start + k) % n;
        if (target[v] > 1) {
          --target[v];
          --stub_count;
          break;
        }
      }
    }
  }

  // Configuration model: shuffle the stub multiset, pair consecutively, and
  // drop pairs that would form a loop or a parallel edge (realised degrees
  // may therefore undershoot their targets).
  std::vector<NodeId> stubs;
  stubs.reserve(stub_count);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < target[v]; ++k) stubs.push_back(nid(v));
  }
  rng.shuffle(stubs);
  std::set<std::pair<NodeId, NodeId>> seen;
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    auto u = stubs[i];
    auto v = stubs[i + 1];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.emplace(u, v).second) continue;
    edges.push_back({u, v});
  }
  return SimpleGraph::from_edges(n, std::move(edges));
}

SimpleGraph random_bipartite_regular(std::size_t side, std::size_t d,
                                     Rng& rng) {
  if (side < 1) throw InvalidArgument("random_bipartite_regular: empty side");
  if (d > side) {
    throw InvalidArgument("random_bipartite_regular: need d <= side");
  }
  // Deterministic seed: d pairwise-disjoint cyclic-shift perfect matchings
  // (left i -> right (i + k) mod side); then bipartiteness-preserving
  // double-edge swaps.
  std::vector<Edge> edges;
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < side; ++i) {
      edges.push_back({nid(i), nid(side + (i + k) % side)});
    }
  }
  std::vector<int> colour(2 * side, 0);
  for (std::size_t v = side; v < 2 * side; ++v) colour[v] = 1;
  double_edge_swaps(edges, &colour, rng);
  auto g = SimpleGraph::from_edges(2 * side, std::move(edges));
  EDS_ENSURE(g.is_regular(d), "random_bipartite_regular: swaps broke regularity");
  return g;
}

SimpleGraph disjoint_union(const SimpleGraph& a, const SimpleGraph& b) {
  GraphBuilder builder(a.num_nodes() + b.num_nodes());
  for (const auto& e : a.edges()) builder.add_edge(e.u, e.v);
  const auto shift = static_cast<NodeId>(a.num_nodes());
  for (const auto& e : b.edges()) {
    builder.add_edge(e.u + shift, e.v + shift);
  }
  return builder.build();
}

}  // namespace eds::graph
