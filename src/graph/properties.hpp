// Structural graph predicates and decompositions.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/simple_graph.hpp"

namespace eds::graph {

/// Component index (0-based) for every node; nodes in the same connected
/// component share an index.
[[nodiscard]] std::vector<std::size_t> connected_components(
    const SimpleGraph& g);

/// Number of connected components (isolated nodes count).
[[nodiscard]] std::size_t num_components(const SimpleGraph& g);

/// True when the graph is connected (the empty graph counts as connected).
[[nodiscard]] bool is_connected(const SimpleGraph& g);

/// A proper 2-colouring (0/1 per node) if the graph is bipartite.
[[nodiscard]] std::optional<std::vector<int>> bipartition(const SimpleGraph& g);

[[nodiscard]] bool is_bipartite(const SimpleGraph& g);

/// degree_histogram(g)[d] = number of nodes with degree d.
[[nodiscard]] std::vector<std::size_t> degree_histogram(const SimpleGraph& g);

/// True when the edge set induces no cycle.
[[nodiscard]] bool is_forest(const SimpleGraph& g);

}  // namespace eds::graph
