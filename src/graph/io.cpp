#include "graph/io.hpp"

#include <ostream>
#include <sstream>
#include <string>

#include "graph/edge_set.hpp"

namespace eds::graph {

void write_edge_list(std::ostream& os, const SimpleGraph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

SimpleGraph read_edge_list(std::istream& is) {
  std::string line;
  auto next_data_line = [&is, &line]() -> bool {
    while (std::getline(is, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_data_line()) {
    throw InvalidStructure("read_edge_list: missing header line");
  }
  std::istringstream header(line);
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(header >> n >> m)) {
    throw InvalidStructure("read_edge_list: malformed header line");
  }

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!next_data_line()) {
      throw InvalidStructure("read_edge_list: fewer edges than promised");
    }
    std::istringstream row(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(row >> u >> v)) {
      throw InvalidStructure("read_edge_list: malformed edge line");
    }
    if (u >= n || v >= n) {
      throw InvalidStructure("read_edge_list: endpoint out of range");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return SimpleGraph::from_edges(n, std::move(edges));
}

std::string to_edge_list_string(const SimpleGraph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

SimpleGraph from_edge_list_string(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

void write_dot(std::ostream& os, const SimpleGraph& g,
               const EdgeSet* highlight, const std::string& name) {
  os << "graph " << name << " {\n";
  os << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v << ";\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "  " << g.edge(e).u << " -- " << g.edge(e).v;
    if (highlight != nullptr && highlight->contains(e)) {
      os << " [color=red, penwidth=2.5]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace eds::graph
