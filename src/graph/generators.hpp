// Graph family generators.
//
// The theorems of the paper quantify over *all* d-regular / max-degree-∆
// graphs, so the experiment harness exercises the algorithms on a spread of
// structured families (cycles, complete (bipartite) graphs, crowns,
// hypercubes, tori, circulants, the Petersen graph) plus random families
// (configuration-model regular graphs, bounded-degree random graphs, random
// trees).  All random generators take an explicit Rng for reproducibility.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/simple_graph.hpp"
#include "util/rng.hpp"

namespace eds::graph {

/// Path with n nodes (n-1 edges); n >= 1.
[[nodiscard]] SimpleGraph path(std::size_t n);

/// Cycle with n nodes; n >= 3.
[[nodiscard]] SimpleGraph cycle(std::size_t n);

/// Complete graph K_n; n >= 1.
[[nodiscard]] SimpleGraph complete(std::size_t n);

/// Complete bipartite graph K_{a,b}; left nodes 0..a-1, right a..a+b-1.
[[nodiscard]] SimpleGraph complete_bipartite(std::size_t a, std::size_t b);

/// Star K_{1,n}: node 0 joined to nodes 1..n.
[[nodiscard]] SimpleGraph star(std::size_t leaves);

/// Crown graph: K_{n,n} minus a perfect matching ((n-1)-regular); n >= 1.
/// This is the `T(l)` building block of the paper's Theorem 2 construction.
[[nodiscard]] SimpleGraph crown(std::size_t n);

/// Hypercube Q_dim with 2^dim nodes (dim-regular); dim >= 1.
[[nodiscard]] SimpleGraph hypercube(std::size_t dim);

/// Grid graph rows x cols (4-neighbourhood, no wraparound).
[[nodiscard]] SimpleGraph grid(std::size_t rows, std::size_t cols);

/// Torus rows x cols (4-regular); rows, cols >= 3 to stay simple.
[[nodiscard]] SimpleGraph torus(std::size_t rows, std::size_t cols);

/// Circulant graph: node i joined to i +- off (mod n) for each offset.
/// Offsets must be in [1, n/2]; an offset of exactly n/2 contributes one
/// edge per node pair (degree 1), others contribute degree 2.
[[nodiscard]] SimpleGraph circulant(std::size_t n,
                                    const std::vector<std::size_t>& offsets);

/// The Petersen graph (10 nodes, 3-regular, not 1-factorisable).
[[nodiscard]] SimpleGraph petersen();

/// Prism / circular ladder CL_n: two n-cycles joined by a perfect matching
/// (3-regular); n >= 3.
[[nodiscard]] SimpleGraph prism(std::size_t n);

/// Moebius ladder M_n: the cycle C_{2n} plus all n antipodal chords
/// (3-regular); n >= 2 (n = 2 gives K_4).
[[nodiscard]] SimpleGraph moebius_ladder(std::size_t n);

/// Wheel W_n: a hub joined to every node of an n-cycle; n >= 3.
[[nodiscard]] SimpleGraph wheel(std::size_t n);

/// Complete multipartite graph with the given part sizes.
[[nodiscard]] SimpleGraph complete_multipartite(
    const std::vector<std::size_t>& parts);

/// Barbell: two K_m cliques joined by a path of `bridge` edges; m >= 3.
[[nodiscard]] SimpleGraph barbell(std::size_t m, std::size_t bridge);

/// Caterpillar: a path of `spine` nodes with `legs_per_node` leaves hanging
/// off every spine node; spine >= 1.  Nodes 0..spine-1 form the spine, the
/// leaves follow in spine order.  Total nodes: spine * (1 + legs_per_node).
/// A long-tail workload for the engine worklist: leaves halt in O(1) rounds
/// while the spine keeps running.
[[nodiscard]] SimpleGraph caterpillar(std::size_t spine,
                                      std::size_t legs_per_node);

/// Uniform random labelled tree on n nodes (Prufer-style attachment).
[[nodiscard]] SimpleGraph random_tree(std::size_t n, Rng& rng);

/// Random d-regular simple graph via the configuration model with rejection.
/// Requires n*d even, d < n.  Throws InternalError if no simple pairing is
/// found after many attempts (practically impossible for d << n).
[[nodiscard]] SimpleGraph random_regular(std::size_t n, std::size_t d,
                                         Rng& rng);

/// Random graph with maximum degree at most `max_degree`.  Attempts to place
/// `target_edges` edges by sampling random pairs and keeping those that do
/// not violate the degree cap; the result can have fewer edges.
[[nodiscard]] SimpleGraph random_bounded_degree(std::size_t n,
                                                std::size_t max_degree,
                                                std::size_t target_edges,
                                                Rng& rng);

/// Random graph with a power-law degree *target* sequence: node degrees are
/// drawn with P(d) ∝ d^-exponent over [1, max_degree] (max_degree = 0 means
/// ⌈√n⌉), then wired by the configuration model with loops and parallel
/// edges dropped — so realised degrees can fall below their targets, as
/// usual for simple-graph power-law samplers.  Requires n >= 2 and
/// exponent > 0.  Deterministic for a fixed rng stream.
[[nodiscard]] SimpleGraph random_power_law(std::size_t n, double exponent,
                                           Rng& rng,
                                           std::size_t max_degree = 0);

/// Random bipartite d-regular graph on two sides of `side` nodes each,
/// built from d random permutations (parallel edges rejected, retried).
[[nodiscard]] SimpleGraph random_bipartite_regular(std::size_t side,
                                                   std::size_t d, Rng& rng);

/// Disjoint union; nodes of `b` are shifted by a.num_nodes().
[[nodiscard]] SimpleGraph disjoint_union(const SimpleGraph& a,
                                         const SimpleGraph& b);

}  // namespace eds::graph
