#include "graph/simple_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

namespace eds::graph {

SimpleGraph::SimpleGraph(std::size_t n) : adjacency_(n) {}

SimpleGraph SimpleGraph::from_edges(std::size_t n, std::vector<Edge> edges) {
  SimpleGraph g(n);
  std::set<std::pair<NodeId, NodeId>> seen;
  g.edges_.reserve(edges.size());
  for (auto e : edges) {
    if (e.u >= n || e.v >= n) {
      throw InvalidStructure("SimpleGraph: edge endpoint out of range");
    }
    if (e.u == e.v) {
      throw InvalidStructure("SimpleGraph: loops are not allowed");
    }
    if (e.u > e.v) std::swap(e.u, e.v);
    if (!seen.emplace(e.u, e.v).second) {
      throw InvalidStructure("SimpleGraph: parallel edges are not allowed");
    }
    const auto id = static_cast<EdgeId>(g.edges_.size());
    g.edges_.push_back(e);
    g.adjacency_[e.u].push_back({e.v, id});
    g.adjacency_[e.v].push_back({e.u, id});
  }
  for (auto& inc : g.adjacency_) {
    std::sort(inc.begin(), inc.end(),
              [](const Incidence& a, const Incidence& b) {
                return std::pair(a.neighbour, a.edge) <
                       std::pair(b.neighbour, b.edge);
              });
  }
  return g;
}

std::size_t SimpleGraph::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& inc : adjacency_) best = std::max(best, inc.size());
  return best;
}

std::size_t SimpleGraph::min_degree() const noexcept {
  if (adjacency_.empty()) return 0;
  std::size_t best = adjacency_.front().size();
  for (const auto& inc : adjacency_) best = std::min(best, inc.size());
  return best;
}

bool SimpleGraph::is_regular(std::size_t d) const noexcept {
  for (const auto& inc : adjacency_) {
    if (inc.size() != d) return false;
  }
  return true;
}

std::optional<EdgeId> SimpleGraph::find_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) {
    throw InvalidArgument("SimpleGraph::find_edge: node out of range");
  }
  // Search the smaller adjacency list.
  const NodeId probe = degree(u) <= degree(v) ? u : v;
  const NodeId target = probe == u ? v : u;
  for (const auto& inc : adjacency_[probe]) {
    if (inc.neighbour == target) return inc.edge;
  }
  return std::nullopt;
}

std::string SimpleGraph::summary() const {
  std::ostringstream os;
  os << "n=" << num_nodes() << " m=" << num_edges()
     << " degmin=" << min_degree() << " degmax=" << max_degree();
  return os.str();
}

GraphBuilder& GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= n_ || v >= n_) {
    throw InvalidArgument("GraphBuilder::add_edge: node out of range");
  }
  edges_.push_back({u, v});
  return *this;
}

SimpleGraph GraphBuilder::build() {
  return SimpleGraph::from_edges(n_, std::move(edges_));
}

}  // namespace eds::graph
