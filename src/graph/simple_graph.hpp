// Simple undirected graphs with stable edge identifiers.
//
// SimpleGraph is the centralised ("God's eye") graph representation used by
// generators, exact solvers, baselines and verifiers.  Distributed executions
// never see it directly: they operate on a PortGraph (src/port) derived from
// it.  The representation is immutable after construction, which keeps edge
// identifiers stable across the whole pipeline (generation -> port numbering
// -> simulation -> verification).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace eds::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// An undirected edge; stored with u <= v after normalisation.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  [[nodiscard]] bool operator==(const Edge&) const = default;

  /// The endpoint different from `x`; throws if `x` is not an endpoint.
  [[nodiscard]] NodeId other(NodeId x) const {
    if (x == u) return v;
    if (x == v) return u;
    throw InvalidArgument("Edge::other: node is not an endpoint");
  }

  /// True when the two edges share at least one endpoint.
  [[nodiscard]] bool adjacent_to(const Edge& rhs) const noexcept {
    return u == rhs.u || u == rhs.v || v == rhs.u || v == rhs.v;
  }
};

/// One entry of a node's adjacency list.
struct Incidence {
  NodeId neighbour = 0;
  EdgeId edge = 0;

  [[nodiscard]] bool operator==(const Incidence&) const = default;
};

/// An immutable simple undirected graph (no loops, no parallel edges).
class SimpleGraph {
 public:
  /// Empty graph with `n` isolated nodes.
  explicit SimpleGraph(std::size_t n = 0);

  /// Builds a graph from an edge list.  Endpoints are normalised (u <= v);
  /// loops and duplicate edges are rejected with InvalidStructure.
  /// Edge ids equal positions in `edges` (after normalisation).
  [[nodiscard]] static SimpleGraph from_edges(std::size_t n,
                                              std::vector<Edge> edges);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_.at(e); }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Adjacency list of `v`, ordered by (neighbour, edge id).
  [[nodiscard]] std::span<const Incidence> incidences(NodeId v) const {
    return adjacency_.at(v);
  }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return adjacency_.at(v).size();
  }

  /// Largest node degree; 0 for an edgeless graph.
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Smallest node degree; 0 for the empty graph.
  [[nodiscard]] std::size_t min_degree() const noexcept;

  /// True when every node has degree exactly `d`.
  [[nodiscard]] bool is_regular(std::size_t d) const noexcept;

  /// The edge id joining u and v, if present.
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  /// True when u and v are joined by an edge.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v).has_value();
  }

  /// Human-readable one-line summary ("n=12 m=18 degmax=3").
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;
};

/// Convenience helper for building edge lists incrementally with validation
/// at the end (via SimpleGraph::from_edges).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n) : n_(n) {}

  /// Records an undirected edge {u, v}; bounds-checked immediately,
  /// loop/duplicate checks happen in build().
  GraphBuilder& add_edge(NodeId u, NodeId v);

  /// Number of edges recorded so far.
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Validates and produces the immutable graph.
  [[nodiscard]] SimpleGraph build();

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

}  // namespace eds::graph
