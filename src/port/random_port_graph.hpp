// Random port-numbered multigraphs: uniform random involutions on a given
// degree sequence.  These are fuzzing inputs for the runtime — arbitrary
// combinations of parallel edges, undirected loops and directed loops —
// exactly the full generality the paper's model allows.
#pragma once

#include <vector>

#include "port/port_graph.hpp"
#include "util/rng.hpp"

namespace eds::port {

/// A random involution over the ports of the given degree sequence: ports
/// are paired up uniformly at random; with odd total port count (or with
/// probability `loop_bias` per leftover pair decision) fixed points appear.
/// Every output validates; loops and parallel edges are expected.
[[nodiscard]] PortGraph random_port_graph(const std::vector<Port>& degrees,
                                          Rng& rng, double fix_probability = 0.1);

}  // namespace eds::port
