// Serialisation of port-numbered graphs.
//
// Plain-text format, one record per line, '#' comments allowed:
//
//   ports <n>
//   deg <d_0> <d_1> ... <d_{n-1}>
//   conn <v> <i> <u> <j>     # p(v,i) = (u,j), written once per pair
//   loop <v> <i>             # fixed point p(v,i) = (v,i)
//
// This is the on-disk form of adversarial instances: a researcher can dump
// a lower-bound construction, edit it, and feed it back to the simulator.
#pragma once

#include <iosfwd>
#include <string>

#include "port/port_graph.hpp"

namespace eds::port {

/// Writes `g` in the portgraph text format.
void write_port_graph(std::ostream& os, const PortGraph& g);

/// Parses a port graph; throws InvalidStructure on malformed input,
/// incomplete involutions or double assignments.
[[nodiscard]] PortGraph read_port_graph(std::istream& is);

/// String convenience wrappers.
[[nodiscard]] std::string to_port_graph_string(const PortGraph& g);
[[nodiscard]] PortGraph from_port_graph_string(const std::string& text);

}  // namespace eds::port
