// Cyclic lifts: systematic construction of covering graphs.
//
// A k-fold cyclic lift of a port-numbered base graph B assigns every
// structural edge a voltage s in Z_k and replaces each node by k layered
// copies; the edge (u,i)-(v,j) with voltage s connects layer l of u to
// layer (l+s) mod k of v, for every l.  The projection (v, l) -> v is a
// covering map by construction, so lifts give an unbounded supply of test
// instances for the indistinguishability machinery (Section 2.3) beyond the
// two constructions of the paper.
#pragma once

#include <vector>

#include "port/port_graph.hpp"
#include "util/rng.hpp"

namespace eds::port {

/// A lift of `base` with `layers` layers and random voltages.  Directed
/// loops receive voltage 0 (staying directed loops in every layer) or, when
/// `layers` is even, possibly layers/2 (becoming cross-layer edges); other
/// edges receive uniform voltages.  Node (v, l) has index l * |V_B| + v.
[[nodiscard]] PortGraph cyclic_lift(const PortGraph& base, std::size_t layers,
                                    Rng& rng);

/// The covering map of a cyclic lift: (v, l) -> v.
[[nodiscard]] std::vector<NodeId> lift_projection(const PortGraph& base,
                                                  std::size_t layers);

}  // namespace eds::port
