// Port-numbered graphs (Section 2.1 of the paper).
//
// A port-numbered graph is a set of nodes V, a degree function d : V -> N,
// and an involution p on the set of ports {(v, i) : v in V, 1 <= i <= d(v)}.
// Crucially this definition admits *multigraphs*: parallel edges, undirected
// loops (p maps two distinct ports of the same node to each other), and
// directed loops (fixed points of p).  The lower-bound machinery depends on
// this: the covering multigraphs of Theorems 1 and 2 have loops and parallel
// edges, and the simulator must run algorithms on them unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/simple_graph.hpp"
#include "util/error.hpp"

namespace eds::port {

using graph::NodeId;

/// 1-based port number, matching the paper's convention.
using Port = std::uint32_t;

/// A port: a (node, port-number) pair.
struct PortRef {
  NodeId node = 0;
  Port port = 1;

  [[nodiscard]] bool operator==(const PortRef&) const = default;
};

/// One structural edge of a port-numbered graph: either an undirected edge
/// joining two distinct ports, or a directed loop at a fixed point of p.
struct PortEdge {
  PortRef a;
  PortRef b;                  // equals `a` for a directed loop
  bool directed_loop = false;

  [[nodiscard]] bool is_loop() const noexcept {
    return directed_loop || a.node == b.node;
  }
};

/// An immutable port-numbered (multi)graph: degrees plus the involution p.
class PortGraph {
 public:
  PortGraph() = default;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return degrees_.size();
  }

  /// Total number of ports, i.e. the sum of degrees.
  [[nodiscard]] std::size_t num_ports() const noexcept {
    return partner_.size();
  }

  [[nodiscard]] Port degree(NodeId v) const {
    if (v >= degrees_.size()) {
      throw InvalidArgument("PortGraph::degree: node out of range");
    }
    return degrees_[v];
  }

  /// The involution: p(v, i).  Ports are 1-based.
  [[nodiscard]] PortRef partner(NodeId v, Port i) const {
    return partner_[flat_index(v, i)];
  }
  [[nodiscard]] PortRef partner(PortRef r) const {
    return partner(r.node, r.port);
  }

  /// The degree sequence as a flat array (d(v) = degree_sequence()[v]).
  /// Hot-path view for the engine layer: plan compilation, structural
  /// hashing and cache verification scan these contiguously instead of
  /// paying a bounds-checked lookup per port.
  [[nodiscard]] const std::vector<Port>& degree_sequence() const noexcept {
    return degrees_;
  }

  /// The involution as a flat array indexed by flat port index (ports of
  /// node v start at offset Σ_{u<v} d(u)); companion of degree_sequence().
  [[nodiscard]] const std::vector<PortRef>& partner_table() const noexcept {
    return partner_;
  }

  /// All structural edges: one entry per unordered port pair {(v,i),(u,j)}
  /// with p(v,i) = (u,j), plus one entry per fixed point (directed loop).
  [[nodiscard]] std::vector<PortEdge> port_edges() const;

  /// True when the graph is simple: no loops of either kind and no parallel
  /// edges (at most one edge per unordered node pair).
  [[nodiscard]] bool is_simple() const;

  /// Verifies the involution property p(p(v,i)) = (v,i) and range validity;
  /// throws InvalidStructure with a description on failure.
  void validate() const;

  /// One-line summary ("nodes=5 ports=20 loops=2").
  [[nodiscard]] std::string summary() const;

 private:
  friend class PortGraphBuilder;

  [[nodiscard]] std::size_t flat_index(NodeId v, Port i) const {
    if (v >= degrees_.size() || i < 1 || i > degrees_[v]) {
      throw InvalidArgument("PortGraph: port reference out of range");
    }
    return offsets_[v] + (i - 1);
  }

  std::vector<Port> degrees_;
  std::vector<std::size_t> offsets_;  // prefix sums of degrees
  std::vector<PortRef> partner_;      // involution, indexed by flat port index
};

/// Incremental construction of a PortGraph.  Every port must be assigned
/// exactly once, either by connect() (joining two distinct ports — possibly
/// of the same node, which creates an undirected loop) or by fix() (a
/// directed loop).  build() validates completeness and the involution.
class PortGraphBuilder {
 public:
  /// Degrees per node; degrees[v] = d(v).
  explicit PortGraphBuilder(std::vector<Port> degrees);

  /// Declares p(a) = b and p(b) = a; a and b must be distinct ports.
  PortGraphBuilder& connect(PortRef a, PortRef b);

  /// Declares the fixed point p(a) = a (a directed loop).
  PortGraphBuilder& fix(PortRef a);

  /// Validates that every port was assigned and returns the graph.
  [[nodiscard]] PortGraph build();

 private:
  [[nodiscard]] std::size_t flat_index(PortRef r) const;

  PortGraph g_;
  std::vector<bool> assigned_;
};

}  // namespace eds::port
