#include "port/covering.hpp"

#include <sstream>

namespace eds::port {

CoveringCheck check_covering_map(const PortGraph& cover, const PortGraph& base,
                                 const std::vector<NodeId>& f) {
  auto fail = [](std::string why) {
    return CoveringCheck{false, std::move(why)};
  };

  if (f.size() != cover.num_nodes()) {
    return fail("covering map must assign an image to every node of H");
  }

  std::vector<bool> hit(base.num_nodes(), false);
  for (NodeId v = 0; v < cover.num_nodes(); ++v) {
    if (f[v] >= base.num_nodes()) {
      return fail("covering map image out of range");
    }
    hit[f[v]] = true;
    if (cover.degree(v) != base.degree(f[v])) {
      std::ostringstream os;
      os << "degree not preserved at node " << v << ": d_H=" << cover.degree(v)
         << " d_G=" << base.degree(f[v]);
      return fail(os.str());
    }
  }
  for (NodeId x = 0; x < base.num_nodes(); ++x) {
    if (!hit[x]) {
      std::ostringstream os;
      os << "covering map is not surjective: node " << x << " has no preimage";
      return fail(os.str());
    }
  }

  for (NodeId v = 0; v < cover.num_nodes(); ++v) {
    for (Port i = 1; i <= cover.degree(v); ++i) {
      const PortRef there = cover.partner(v, i);
      const PortRef expect = base.partner(f[v], i);
      if (expect.node != f[there.node] || expect.port != there.port) {
        std::ostringstream os;
        os << "connections not preserved: p_H(" << v << "," << i << ")=("
           << there.node << "," << there.port << ") but p_G(f(" << v << "),"
           << i << ")=(" << expect.node << "," << expect.port << ")";
        return fail(os.str());
      }
    }
  }
  return {};
}

bool is_covering_map(const PortGraph& cover, const PortGraph& base,
                     const std::vector<NodeId>& f) {
  return check_covering_map(cover, base, f).ok;
}

}  // namespace eds::port
