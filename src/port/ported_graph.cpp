#include "port/ported_graph.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace eds::port {

PortedGraph::PortedGraph(
    SimpleGraph graph, const std::vector<std::vector<EdgeId>>& order_per_node)
    : graph_(std::move(graph)), edge_at_port_(order_per_node) {
  const std::size_t n = graph_.num_nodes();
  if (order_per_node.size() != n) {
    throw InvalidArgument("PortedGraph: order_per_node size mismatch");
  }
  // Validate each node's list is a permutation of its incident edge ids.
  for (NodeId v = 0; v < n; ++v) {
    std::vector<EdgeId> expected;
    expected.reserve(graph_.degree(v));
    for (const auto& inc : graph_.incidences(v)) expected.push_back(inc.edge);
    std::vector<EdgeId> got = order_per_node[v];
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    if (expected != got) {
      std::ostringstream os;
      os << "PortedGraph: port order of node " << v
         << " is not a permutation of its incident edges";
      throw InvalidStructure(os.str());
    }
  }

  std::vector<Port> degrees(n);
  for (NodeId v = 0; v < n; ++v) {
    degrees[v] = static_cast<Port>(graph_.degree(v));
  }
  PortGraphBuilder builder(std::move(degrees));
  // Connect port i of v to the port of the other endpoint carrying the same
  // edge.  Iterate over edges so each connection is made exactly once.
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const auto& edge = graph_.edge(e);
    builder.connect({edge.u, port_of(edge.u, e)}, {edge.v, port_of(edge.v, e)});
  }
  ports_ = builder.build();
}

EdgeId PortedGraph::edge_at(NodeId v, Port i) const {
  if (v >= edge_at_port_.size() || i < 1 || i > edge_at_port_[v].size()) {
    throw InvalidArgument("PortedGraph::edge_at: port out of range");
  }
  return edge_at_port_[v][i - 1];
}

Port PortedGraph::port_of(NodeId v, EdgeId e) const {
  if (v >= edge_at_port_.size()) {
    throw InvalidArgument("PortedGraph::port_of: node out of range");
  }
  const auto& order = edge_at_port_[v];
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (order[k] == e) return static_cast<Port>(k + 1);
  }
  throw InvalidArgument("PortedGraph::port_of: node is not an endpoint");
}

Port PortedGraph::port_towards(NodeId v, NodeId u) const {
  const auto e = graph_.find_edge(v, u);
  if (!e) throw InvalidArgument("PortedGraph::port_towards: no such edge");
  return port_of(v, *e);
}

PortedGraph with_canonical_ports(SimpleGraph g) {
  std::vector<std::vector<EdgeId>> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    order[v].reserve(g.degree(v));
    for (const auto& inc : g.incidences(v)) order[v].push_back(inc.edge);
  }
  return PortedGraph(std::move(g), order);
}

PortedGraph with_random_ports(SimpleGraph g, Rng& rng) {
  std::vector<std::vector<EdgeId>> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    order[v].reserve(g.degree(v));
    for (const auto& inc : g.incidences(v)) order[v].push_back(inc.edge);
    rng.shuffle(order[v]);
  }
  return PortedGraph(std::move(g), order);
}

}  // namespace eds::port
