#include "port/io.hpp"

#include <memory>
#include <sstream>
#include <vector>

namespace eds::port {

void write_port_graph(std::ostream& os, const PortGraph& g) {
  os << "ports " << g.num_nodes() << '\n';
  os << "deg";
  for (NodeId v = 0; v < g.num_nodes(); ++v) os << ' ' << g.degree(v);
  os << '\n';
  for (const auto& pe : g.port_edges()) {
    if (pe.directed_loop) {
      os << "loop " << pe.a.node << ' ' << pe.a.port << '\n';
    } else {
      os << "conn " << pe.a.node << ' ' << pe.a.port << ' ' << pe.b.node << ' '
         << pe.b.port << '\n';
    }
  }
}

PortGraph read_port_graph(std::istream& is) {
  std::string line;
  auto fail = [](const std::string& why) -> void {
    throw InvalidStructure("read_port_graph: " + why);
  };

  std::size_t n = 0;
  bool have_header = false;
  bool have_degrees = false;
  std::vector<Port> degrees;
  std::unique_ptr<PortGraphBuilder> builder;

  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    std::istringstream row(line);
    std::string keyword;
    row >> keyword;

    if (keyword == "ports") {
      if (have_header) fail("duplicate 'ports' line");
      if (!(row >> n)) fail("malformed 'ports' line");
      have_header = true;
    } else if (keyword == "deg") {
      if (!have_header) fail("'deg' before 'ports'");
      if (have_degrees) fail("duplicate 'deg' line");
      degrees.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        if (!(row >> degrees[v])) fail("too few degrees");
      }
      builder = std::make_unique<PortGraphBuilder>(degrees);
      have_degrees = true;
    } else if (keyword == "conn") {
      if (!have_degrees) fail("'conn' before 'deg'");
      NodeId v = 0;
      NodeId u = 0;
      Port i = 0;
      Port j = 0;
      if (!(row >> v >> i >> u >> j)) fail("malformed 'conn' line");
      builder->connect({v, i}, {u, j});
    } else if (keyword == "loop") {
      if (!have_degrees) fail("'loop' before 'deg'");
      NodeId v = 0;
      Port i = 0;
      if (!(row >> v >> i)) fail("malformed 'loop' line");
      builder->fix({v, i});
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_degrees) fail("missing 'deg' line");
  return builder->build();
}

std::string to_port_graph_string(const PortGraph& g) {
  std::ostringstream os;
  write_port_graph(os, g);
  return os.str();
}

PortGraph from_port_graph_string(const std::string& text) {
  std::istringstream is(text);
  return read_port_graph(is);
}

}  // namespace eds::port
