// Radius-t views of anonymous nodes (the machinery behind the paper's
// indistinguishability arguments, in the tradition of Angluin 1980 and
// Yamashita–Kameda 1996).
//
// The view of a node v at radius t captures everything a deterministic
// anonymous algorithm can possibly learn about v's surroundings within t
// communication rounds: its degree, and — recursively — for each port i the
// pair (i, j) of port numbers on that connection together with the
// neighbour's radius-(t-1) view.  Two nodes with equal radius-t views are
// *provably* indistinguishable to any t-round deterministic algorithm; this
// module computes view equivalence classes by iterated refinement (a
// port-aware colour refinement), and the test suite checks the implication
// empirically against the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "port/port_graph.hpp"

namespace eds::port {

/// view_classes(g, t)[v] is the equivalence class of v's radius-t view;
/// classes are numbered 0.. from the refinement.  t = 0 classifies by
/// degree alone.
[[nodiscard]] std::vector<std::size_t> view_classes(const PortGraph& g,
                                                    std::size_t t);

/// The refinement's fixpoint: classes of the full (infinite-radius) view.
/// Two nodes in the same class are indistinguishable to deterministic
/// anonymous algorithms of *any* running time.  (Reached after at most
/// |V| rounds of refinement.)
[[nodiscard]] std::vector<std::size_t> stable_view_classes(const PortGraph& g);

/// Number of distinct classes in a classification.
[[nodiscard]] std::size_t num_classes(const std::vector<std::size_t>& classes);

/// True when `f` maps nodes onto representatives with identical stable
/// views — a necessary condition for being a covering map that the
/// covering-map checker's positive verdicts must imply.
[[nodiscard]] bool respects_views(const PortGraph& cover,
                                  const PortGraph& base,
                                  const std::vector<NodeId>& f);

}  // namespace eds::port
