// Covering maps between port-numbered graphs (Section 2.3 of the paper).
//
// A surjection f : V_H -> V_G is a covering map when it preserves degrees
// and connections: p_H(v, i) = (u, j) implies p_G(f(v), i) = (f(u), j).
// The key lemma — outputs of a deterministic anonymous algorithm on H equal
// the lifted outputs on G — is what the lower-bound constructions exploit,
// and what our tests verify *empirically* against the simulator.
#pragma once

#include <string>
#include <vector>

#include "port/port_graph.hpp"

namespace eds::port {

/// Result of a covering-map check; `ok` plus a human-readable reason when not.
struct CoveringCheck {
  bool ok = true;
  std::string reason;
};

/// Checks whether `f` (indexed by nodes of H) is a covering map from H to G.
/// Verifies surjectivity, degree preservation and connection preservation.
[[nodiscard]] CoveringCheck check_covering_map(const PortGraph& cover,
                                               const PortGraph& base,
                                               const std::vector<NodeId>& f);

/// Convenience wrapper: true iff check_covering_map(...).ok.
[[nodiscard]] bool is_covering_map(const PortGraph& cover,
                                   const PortGraph& base,
                                   const std::vector<NodeId>& f);

}  // namespace eds::port
