#include "port/port_graph.hpp"

#include <map>
#include <numeric>
#include <sstream>
#include <utility>

namespace eds::port {

std::vector<PortEdge> PortGraph::port_edges() const {
  std::vector<PortEdge> out;
  out.reserve(num_ports() / 2 + 1);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (Port i = 1; i <= degrees_[v]; ++i) {
      const PortRef here{v, i};
      const PortRef there = partner(here);
      if (there == here) {
        out.push_back({here, here, /*directed_loop=*/true});
      } else if (std::pair(v, i) < std::pair(there.node, there.port)) {
        out.push_back({here, there, /*directed_loop=*/false});
      }
    }
  }
  return out;
}

bool PortGraph::is_simple() const {
  std::map<std::pair<NodeId, NodeId>, int> count;
  for (const auto& e : port_edges()) {
    if (e.is_loop()) return false;
    NodeId u = e.a.node;
    NodeId v = e.b.node;
    if (u > v) std::swap(u, v);
    if (++count[{u, v}] > 1) return false;
  }
  return true;
}

void PortGraph::validate() const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (Port i = 1; i <= degrees_[v]; ++i) {
      const PortRef there = partner(v, i);
      if (there.node >= num_nodes() || there.port < 1 ||
          there.port > degrees_[there.node]) {
        std::ostringstream os;
        os << "PortGraph: p(" << v << "," << i << ") points out of range";
        throw InvalidStructure(os.str());
      }
      const PortRef back = partner(there);
      if (!(back == PortRef{v, i})) {
        std::ostringstream os;
        os << "PortGraph: involution violated at node " << v << " port " << i;
        throw InvalidStructure(os.str());
      }
    }
  }
}

std::string PortGraph::summary() const {
  std::size_t loops = 0;
  for (const auto& e : port_edges()) {
    if (e.is_loop()) ++loops;
  }
  std::ostringstream os;
  os << "nodes=" << num_nodes() << " ports=" << num_ports()
     << " loops=" << loops;
  return os.str();
}

PortGraphBuilder::PortGraphBuilder(std::vector<Port> degrees) {
  g_.degrees_ = std::move(degrees);
  g_.offsets_.resize(g_.degrees_.size());
  std::size_t total = 0;
  for (std::size_t v = 0; v < g_.degrees_.size(); ++v) {
    g_.offsets_[v] = total;
    total += g_.degrees_[v];
  }
  g_.partner_.resize(total);
  assigned_.assign(total, false);
}

std::size_t PortGraphBuilder::flat_index(PortRef r) const {
  return g_.flat_index(r.node, r.port);
}

PortGraphBuilder& PortGraphBuilder::connect(PortRef a, PortRef b) {
  if (a == b) {
    throw InvalidArgument(
        "PortGraphBuilder::connect: use fix() for a directed loop");
  }
  const std::size_t ia = flat_index(a);
  const std::size_t ib = flat_index(b);
  if (assigned_[ia] || assigned_[ib]) {
    std::ostringstream os;
    os << "PortGraphBuilder: port already connected: (" << a.node << ","
       << a.port << ") or (" << b.node << "," << b.port << ")";
    throw InvalidStructure(os.str());
  }
  g_.partner_[ia] = b;
  g_.partner_[ib] = a;
  assigned_[ia] = assigned_[ib] = true;
  return *this;
}

PortGraphBuilder& PortGraphBuilder::fix(PortRef a) {
  const std::size_t ia = flat_index(a);
  if (assigned_[ia]) {
    throw InvalidStructure("PortGraphBuilder::fix: port already connected");
  }
  g_.partner_[ia] = a;
  assigned_[ia] = true;
  return *this;
}

PortGraph PortGraphBuilder::build() {
  for (std::size_t idx = 0; idx < assigned_.size(); ++idx) {
    if (!assigned_[idx]) {
      std::ostringstream os;
      os << "PortGraphBuilder::build: unassigned port (flat index " << idx
         << ")";
      throw InvalidStructure(os.str());
    }
  }
  PortGraph out = g_;
  out.validate();
  return out;
}

}  // namespace eds::port
