// A simple graph together with a port numbering, plus the cross-maps that
// let us translate between the distributed world (node, port) and the
// centralised world (edge id).
//
// All distributed executions in this library run on a PortedGraph (or a bare
// PortGraph for multigraph covering spaces); all verification runs on the
// underlying SimpleGraph via edge ids.
#pragma once

#include <vector>

#include "graph/simple_graph.hpp"
#include "port/port_graph.hpp"
#include "util/rng.hpp"

namespace eds::port {

using graph::EdgeId;
using graph::SimpleGraph;

/// A simple graph with a port numbering and bidirectional port<->edge maps.
class PortedGraph {
 public:
  /// Builds from a graph and, for each node, its incident edge ids in port
  /// order (order_per_node[v][i-1] is the edge on port i of v).  Validates
  /// that each node's list is a permutation of its incident edges.
  PortedGraph(SimpleGraph graph,
              const std::vector<std::vector<EdgeId>>& order_per_node);

  [[nodiscard]] const SimpleGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const PortGraph& ports() const noexcept { return ports_; }

  /// The edge connected to port i of node v.
  [[nodiscard]] EdgeId edge_at(NodeId v, Port i) const;

  /// The port of node v on edge e; throws if v is not an endpoint of e.
  [[nodiscard]] Port port_of(NodeId v, EdgeId e) const;

  /// The paper's l_G(v, u): the port of v on the edge {v, u}.
  [[nodiscard]] Port port_towards(NodeId v, NodeId u) const;

 private:
  SimpleGraph graph_;
  PortGraph ports_;
  std::vector<std::vector<EdgeId>> edge_at_port_;  // [v][i-1] -> edge id
};

/// Ports assigned in adjacency-list order (deterministic).
[[nodiscard]] PortedGraph with_canonical_ports(SimpleGraph g);

/// Ports assigned by an independent random permutation at every node.
[[nodiscard]] PortedGraph with_random_ports(SimpleGraph g, Rng& rng);

}  // namespace eds::port
