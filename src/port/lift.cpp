#include "port/lift.hpp"

namespace eds::port {

PortGraph cyclic_lift(const PortGraph& base, std::size_t layers, Rng& rng) {
  if (layers < 1) throw InvalidArgument("cyclic_lift: need layers >= 1");
  const auto nb = static_cast<NodeId>(base.num_nodes());

  std::vector<Port> degrees(static_cast<std::size_t>(nb) * layers);
  for (std::size_t l = 0; l < layers; ++l) {
    for (NodeId v = 0; v < nb; ++v) {
      degrees[l * nb + v] = base.degree(v);
    }
  }
  PortGraphBuilder builder(std::move(degrees));

  auto at = [nb](NodeId v, std::size_t layer) {
    return static_cast<NodeId>(layer * nb + v);
  };

  for (const auto& pe : base.port_edges()) {
    if (pe.directed_loop) {
      // Voltage 0 keeps a directed loop per layer; layers/2 (even k) turns
      // the fixed point into a cross-layer undirected edge on the same port.
      const bool cross = layers % 2 == 0 && rng.chance(0.5);
      for (std::size_t l = 0; l < layers; ++l) {
        if (!cross) {
          builder.fix({at(pe.a.node, l), pe.a.port});
        } else if (l < layers / 2) {
          builder.connect({at(pe.a.node, l), pe.a.port},
                          {at(pe.a.node, l + layers / 2), pe.a.port});
        }
      }
      continue;
    }
    const auto s = static_cast<std::size_t>(rng.below(layers));
    // Undirected loop on one node with s == 0 and a.port != b.port is fine:
    // it stays an in-layer undirected loop.
    for (std::size_t l = 0; l < layers; ++l) {
      builder.connect({at(pe.a.node, l), pe.a.port},
                      {at(pe.b.node, (l + s) % layers), pe.b.port});
    }
  }
  auto lifted = builder.build();
  return lifted;
}

std::vector<NodeId> lift_projection(const PortGraph& base,
                                    std::size_t layers) {
  const auto nb = static_cast<NodeId>(base.num_nodes());
  std::vector<NodeId> f(static_cast<std::size_t>(nb) * layers);
  for (std::size_t l = 0; l < layers; ++l) {
    for (NodeId v = 0; v < nb; ++v) f[l * nb + v] = v;
  }
  return f;
}

}  // namespace eds::port
