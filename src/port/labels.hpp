// Label pairs, uniquely labelled edges, distinguishable neighbours and the
// matchings M_G(i, j) (Section 5 of the paper).
//
// These are *centralised oracles* mirroring what each node of a distributed
// algorithm computes locally in O(1) rounds; they are used by the algorithm
// schedule, by the test suite (Lemmas 1 and 2 as property tests) and by the
// figure-regeneration benches.
#pragma once

#include <optional>
#include <vector>

#include "graph/edge_set.hpp"
#include "port/ported_graph.hpp"

namespace eds::port {

/// The unordered label pair l_G{u, v} = {l_G(v,u), l_G(u,v)} of an edge,
/// stored with lo <= hi.
struct LabelPair {
  Port lo = 0;
  Port hi = 0;

  [[nodiscard]] bool operator==(const LabelPair&) const = default;
};

/// Label pair of edge `e`.
[[nodiscard]] LabelPair label_pair(const PortedGraph& pg, graph::EdgeId e);

/// The edges incident to `v` whose label pair differs from the label pair of
/// every other edge incident to `v` (in increasing order of v's port).
[[nodiscard]] std::vector<graph::EdgeId> uniquely_labelled_edges(
    const PortedGraph& pg, NodeId v);

/// The distinguishable neighbour of `v`: the other endpoint of the uniquely
/// labelled edge of v minimising l_G(v, u); nullopt when v has no uniquely
/// labelled edge (possible only for even-degree nodes — Lemma 1).
[[nodiscard]] std::optional<NodeId> distinguishable_neighbour(
    const PortedGraph& pg, NodeId v);

/// M_G(i, j): all edges {v, u} with p_G(v, i) = (u, j) and u the
/// distinguishable neighbour of v.  Always a matching (Lemma 2).
[[nodiscard]] graph::EdgeSet matching_m(const PortedGraph& pg, Port i, Port j);

}  // namespace eds::port
