#include "port/random_port_graph.hpp"

namespace eds::port {

PortGraph random_port_graph(const std::vector<Port>& degrees, Rng& rng,
                            double fix_probability) {
  PortGraphBuilder builder(degrees);

  std::vector<PortRef> ports;
  for (NodeId v = 0; v < degrees.size(); ++v) {
    for (Port i = 1; i <= degrees[v]; ++i) ports.push_back({v, i});
  }
  rng.shuffle(ports);

  // Peel ports off the shuffled pool: each becomes a fixed point with the
  // given probability, otherwise it pairs with the next remaining port.
  std::size_t index = 0;
  while (index < ports.size()) {
    const auto a = ports[index++];
    if (index == ports.size() || rng.chance(fix_probability)) {
      builder.fix(a);
    } else {
      builder.connect(a, ports[index++]);
    }
  }
  return builder.build();
}

}  // namespace eds::port
