#include "port/labels.hpp"

#include <algorithm>
#include <map>

namespace eds::port {

LabelPair label_pair(const PortedGraph& pg, graph::EdgeId e) {
  const auto& edge = pg.graph().edge(e);
  Port a = pg.port_of(edge.u, e);
  Port b = pg.port_of(edge.v, e);
  if (a > b) std::swap(a, b);
  return {a, b};
}

std::vector<graph::EdgeId> uniquely_labelled_edges(const PortedGraph& pg,
                                                   NodeId v) {
  const auto deg = pg.graph().degree(v);
  std::map<std::pair<Port, Port>, int> multiplicity;
  std::vector<LabelPair> pair_at(deg);
  for (Port i = 1; i <= deg; ++i) {
    const auto lp = label_pair(pg, pg.edge_at(v, i));
    pair_at[i - 1] = lp;
    ++multiplicity[{lp.lo, lp.hi}];
  }
  std::vector<graph::EdgeId> out;
  for (Port i = 1; i <= deg; ++i) {
    const auto& lp = pair_at[i - 1];
    if (multiplicity[{lp.lo, lp.hi}] == 1) {
      out.push_back(pg.edge_at(v, i));
    }
  }
  return out;
}

std::optional<NodeId> distinguishable_neighbour(const PortedGraph& pg,
                                                NodeId v) {
  // uniquely_labelled_edges returns edges in increasing order of v's port,
  // so the first entry minimises l_G(v, u).
  const auto unique = uniquely_labelled_edges(pg, v);
  if (unique.empty()) return std::nullopt;
  return pg.graph().edge(unique.front()).other(v);
}

graph::EdgeSet matching_m(const PortedGraph& pg, Port i, Port j) {
  graph::EdgeSet out(pg.graph().num_edges());
  for (NodeId v = 0; v < pg.graph().num_nodes(); ++v) {
    if (i > pg.graph().degree(v)) continue;
    const auto e = pg.edge_at(v, i);
    const NodeId u = pg.graph().edge(e).other(v);
    if (pg.port_of(u, e) != j) continue;
    if (distinguishable_neighbour(pg, v) == u) out.insert(e);
  }
  return out;
}

}  // namespace eds::port
