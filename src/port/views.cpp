#include "port/views.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace eds::port {

namespace {

/// One refinement round: the new class of v is determined by its old class
/// plus, for each port i in order, the pair (remote port, neighbour's old
/// class).  Directed loops contribute the node's own class.
std::vector<std::size_t> refine(const PortGraph& g,
                                const std::vector<std::size_t>& old) {
  using Signature =
      std::pair<std::size_t, std::vector<std::pair<Port, std::size_t>>>;
  std::map<Signature, std::size_t> numbering;
  std::vector<std::size_t> next(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Signature sig;
    sig.first = old[v];
    for (Port i = 1; i <= g.degree(v); ++i) {
      const auto there = g.partner(v, i);
      sig.second.emplace_back(there.port, old[there.node]);
    }
    const auto [it, inserted] =
        numbering.emplace(std::move(sig), numbering.size());
    next[v] = it->second;
  }
  return next;
}

std::vector<std::size_t> degree_classes(const PortGraph& g) {
  std::map<Port, std::size_t> numbering;
  std::vector<std::size_t> classes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto [it, inserted] =
        numbering.emplace(g.degree(v), numbering.size());
    classes[v] = it->second;
  }
  return classes;
}

}  // namespace

std::vector<std::size_t> view_classes(const PortGraph& g, std::size_t t) {
  auto classes = degree_classes(g);
  for (std::size_t round = 0; round < t; ++round) {
    classes = refine(g, classes);
  }
  return classes;
}

std::vector<std::size_t> stable_view_classes(const PortGraph& g) {
  auto classes = degree_classes(g);
  for (std::size_t round = 0; round < g.num_nodes() + 1; ++round) {
    auto next = refine(g, classes);
    if (num_classes(next) == num_classes(classes)) {
      // Refinement is monotone: an equal class count means a fixpoint.
      return next;
    }
    classes = std::move(next);
  }
  return classes;
}

std::size_t num_classes(const std::vector<std::size_t>& classes) {
  if (classes.empty()) return 0;
  return *std::max_element(classes.begin(), classes.end()) + 1;
}

bool respects_views(const PortGraph& cover, const PortGraph& base,
                    const std::vector<NodeId>& f) {
  if (f.size() != cover.num_nodes()) return false;
  // Compare stable views in the disjoint union of the two graphs: nodes of
  // the cover must land in the same class as their images.
  std::vector<Port> degrees;
  degrees.reserve(cover.num_nodes() + base.num_nodes());
  for (NodeId v = 0; v < cover.num_nodes(); ++v) {
    degrees.push_back(cover.degree(v));
  }
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    degrees.push_back(base.degree(v));
  }
  PortGraphBuilder builder(std::move(degrees));
  const auto shift = static_cast<NodeId>(cover.num_nodes());
  auto copy_into = [&builder](const PortGraph& g, NodeId offset) {
    for (const auto& pe : g.port_edges()) {
      const PortRef a{pe.a.node + offset, pe.a.port};
      if (pe.directed_loop) {
        builder.fix(a);
      } else {
        builder.connect(a, {pe.b.node + offset, pe.b.port});
      }
    }
  };
  copy_into(cover, 0);
  copy_into(base, shift);
  const auto classes = stable_view_classes(builder.build());
  for (NodeId v = 0; v < cover.num_nodes(); ++v) {
    if (classes[v] != classes[shift + f[v]]) return false;
  }
  return true;
}

}  // namespace eds::port
