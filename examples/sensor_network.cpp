// A realistic deployment scenario: link monitoring in a wireless mesh.
//
// An edge dominating set is exactly a minimum set of links on which to run
// monitoring agents so that every link is adjacent to a monitored one —
// and the port-numbering model matches radio hardware with numbered
// interfaces but no globally unique IDs.  We compare the distributed
// algorithm against the centralised baselines on a torus-shaped mesh and on
// an irregular mesh with failed nodes.
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "baseline/baseline.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

void report(const std::string& name, const eds::graph::SimpleGraph& g,
            eds::Rng& rng, eds::TextTable& table) {
  const auto pg = eds::port::with_random_ports(g, rng);
  const auto rec = eds::algo::recommended_for(g);
  const auto outcome = eds::algo::run_algorithm(pg, rec.algorithm, rec.param);
  const bool ok = eds::analysis::is_edge_dominating_set(g, outcome.solution);

  const auto greedy = eds::baseline::greedy_maximal_matching(g);
  auto child = rng.split();
  const auto random = eds::baseline::random_maximal_matching(g, child);

  table.row({name, std::to_string(g.num_nodes()), std::to_string(g.num_edges()),
             eds::algo::algorithm_name(rec.algorithm),
             std::to_string(outcome.solution.size()),
             std::to_string(outcome.stats.rounds), ok ? "yes" : "NO",
             std::to_string(greedy.size()), std::to_string(random.size())});
}

}  // namespace

int main() {
  eds::Rng rng(7);
  eds::TextTable table("link monitoring on mesh networks");
  table.header({"mesh", "nodes", "links", "algorithm", "monitors", "rounds",
                "valid", "greedy-MM", "random-MM"});

  // A pristine 6x6 torus mesh (4-regular: every radio has 4 neighbours).
  report("torus-6x6", eds::graph::torus(6, 6), rng, table);

  // A campus-wide 8x12 torus.
  report("torus-8x12", eds::graph::torus(8, 12), rng, table);

  // An irregular mesh: a bounded-degree random deployment (failed radios,
  // obstacles), max 5 interfaces per node.
  report("irregular-120", eds::graph::random_bounded_degree(120, 5, 260, rng),
         rng, table);

  // A sparse backbone: a random tree plus a few cross links.
  auto backbone = eds::graph::random_tree(60, rng);
  report("backbone-60", backbone, rng, table);

  table.print(std::cout);
  std::cout << "\nReading: 'monitors' is the distributed solution size —\n"
               "every link is adjacent to a monitored link; 'rounds' is\n"
               "independent of mesh size (locality), so the same firmware\n"
               "scales to any deployment.\n";
  return 0;
}
