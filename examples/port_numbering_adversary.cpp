// How much does the port numbering matter?  The same algorithm on the same
// graph under friendly (random) vs adversarial (2-factorisation) numberings:
// the adversarial numbering forces the Theorem 1 worst case.
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "exact/exact_eds.hpp"
#include "factor/two_factor.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  eds::Rng rng(2026);
  eds::TextTable table(
      "port-one on 4-regular graphs: numbering adversary study");
  table.header({"graph", "optimum", "factor-ports |D|", "random-ports |D|",
                "best over 20 numberings", "paper bound"});

  for (int instance = 0; instance < 5; ++instance) {
    const auto g = eds::graph::random_regular(14, 4, rng);
    const auto optimum = eds::exact::minimum_eds_size(g);

    const auto adversarial = eds::factor::with_factor_ports(g);
    const auto forced =
        eds::algo::run_algorithm(adversarial, eds::algo::Algorithm::kPortOne)
            .solution.size();

    std::size_t one_random = 0;
    std::size_t best = g.num_edges();
    for (int trial = 0; trial < 20; ++trial) {
      const auto pg = eds::port::with_random_ports(g, rng);
      const auto size =
          eds::algo::run_algorithm(pg, eds::algo::Algorithm::kPortOne)
              .solution.size();
      if (trial == 0) one_random = size;
      best = std::min(best, size);
    }

    table.row({"random-4-regular-" + std::to_string(instance),
               std::to_string(optimum), std::to_string(forced),
               std::to_string(one_random), std::to_string(best),
               eds::analysis::paper_bound_regular(4).str()});
  }

  table.print(std::cout);
  std::cout
      << "\nThe factor-based numbering always forces |D| = |V| = 14 (a whole\n"
         "2-factor), matching the lower-bound construction; random\n"
         "numberings usually admit much smaller outputs.  The guarantee\n"
         "4 - 2/d holds regardless of the adversary.\n";
  return 0;
}
