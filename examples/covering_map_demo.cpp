// Demonstrates the covering-map lemma (Section 2.3) live: a deterministic
// anonymous algorithm cannot distinguish a graph from its covering space.
// We run the same algorithm on a 12-cycle and on the 1-node multigraph it
// covers, and show the outputs lift exactly.
#include <iostream>

#include "algo/driver.hpp"
#include "graph/generators.hpp"
#include "port/covering.hpp"
#include "port/port_graph.hpp"
#include "port/ported_graph.hpp"
#include "runtime/runner.hpp"

namespace {

eds::port::PortedGraph oriented_cycle(std::size_t n) {
  auto g = eds::graph::cycle(n);
  std::vector<std::vector<eds::graph::EdgeId>> order(
      n, std::vector<eds::graph::EdgeId>(2));
  for (eds::graph::NodeId v = 0; v < n; ++v) {
    order[v][0] =
        *g.find_edge(v, static_cast<eds::graph::NodeId>((v + 1) % n));
    order[v][1] =
        *g.find_edge(v, static_cast<eds::graph::NodeId>((v + n - 1) % n));
  }
  return eds::port::PortedGraph(std::move(g), order);
}

void print_outputs(const char* label,
                   const std::vector<std::vector<eds::port::Port>>& outputs) {
  std::cout << label << ":\n";
  for (std::size_t v = 0; v < outputs.size(); ++v) {
    std::cout << "  node " << v << " -> {";
    for (std::size_t i = 0; i < outputs[v].size(); ++i) {
      std::cout << (i ? "," : "") << outputs[v][i];
    }
    std::cout << "}\n";
  }
}

}  // namespace

int main() {
  // The covering space: C_12 with ports 1 (forward) and 2 (backward).
  const auto big = oriented_cycle(12);

  // The base: one anonymous node with a loop pairing its two ports — what
  // the cycle "looks like" to a local algorithm.
  eds::port::PortGraphBuilder mb({2});
  mb.connect({0, 1}, {0, 2});
  const auto base = mb.build();

  const std::vector<eds::graph::NodeId> f(12, 0);
  const auto check = eds::port::check_covering_map(big.ports(), base, f);
  std::cout << "f : C_12 -> bouquet is a covering map: "
            << (check.ok ? "yes" : check.reason) << "\n\n";

  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
  const auto on_cycle = eds::runtime::run_synchronous(big.ports(), *factory);
  const auto on_base = eds::runtime::run_synchronous(base, *factory);

  print_outputs("outputs on C_12", on_cycle.outputs);
  print_outputs("outputs on the 1-node base", on_base.outputs);

  bool lifts = true;
  for (std::size_t v = 0; v < 12; ++v) {
    lifts = lifts && on_cycle.outputs[v] == on_base.outputs[0];
  }
  std::cout << "\nevery node of C_12 behaves exactly like the base node: "
            << (lifts ? "yes" : "NO") << "\n";
  std::cout << "consequence: the algorithm must select EVERY edge of the\n"
               "cycle (ratio 3 = 4 - 2/d at d = 2) — no deterministic\n"
               "anonymous algorithm can do better on this numbering.\n";
  return lifts ? 0 : 1;
}
