// Quickstart: build a graph, number its ports, run the paper's algorithm,
// verify the result, and compare against the exact optimum.
//
//   $ ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "analysis/verify.hpp"
#include "exact/exact_eds.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  eds::Rng rng(seed);

  // 1. A random 3-regular network on 16 nodes.
  const auto g = eds::graph::random_regular(16, 3, rng);
  std::cout << "graph: " << g.summary() << "\n";

  // 2. An adversary-chosen port numbering (here: random).
  const auto pg = eds::port::with_random_ports(g, rng);

  // 3. The paper prescribes Theorem 4's O(d^2) algorithm for odd-regular
  //    graphs; recommended_for picks it automatically.
  const auto rec = eds::algo::recommended_for(g);
  std::cout << "algorithm: " << eds::algo::algorithm_name(rec.algorithm)
            << "\n";

  const auto outcome = eds::algo::run_algorithm(pg, rec.algorithm, rec.param);
  std::cout << "rounds: " << outcome.stats.rounds
            << "   messages: " << outcome.stats.messages_sent << "\n";
  std::cout << "|D| = " << outcome.solution.size() << ", edges:";
  for (const auto e : outcome.solution.to_vector()) {
    std::cout << " {" << g.edge(e).u << "," << g.edge(e).v << "}";
  }
  std::cout << "\n";

  // 4. Verify and compare with the exact optimum.
  const bool feasible =
      eds::analysis::is_edge_dominating_set(g, outcome.solution);
  const auto optimum = eds::exact::minimum_eds_size(g);
  const auto ratio =
      eds::analysis::approximation_ratio(outcome.solution.size(), optimum);
  const auto bound = eds::analysis::paper_bound_regular(3);
  std::cout << "feasible EDS: " << (feasible ? "yes" : "NO") << "\n";
  std::cout << "optimum |D*| = " << optimum << ", ratio = " << ratio
            << " (= " << ratio.to_double() << "), paper bound = " << bound
            << " (= " << bound.to_double() << ")\n";
  return feasible && ratio <= bound ? 0 : 1;
}
