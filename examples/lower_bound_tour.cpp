// A guided tour of the paper's lower-bound constructions (Theorems 1 and 2):
// builds the adversarial graphs, prints their anatomy, runs the matching
// upper-bound algorithms on them, and shows the forced ratios being hit
// exactly.
#include <iostream>

#include "algo/driver.hpp"
#include "analysis/ratio.hpp"
#include "lb/lower_bounds.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"

namespace {

void tour_even(eds::port::Port d) {
  const auto inst = eds::lb::even_lower_bound(d);
  const auto& g = inst.ported.graph();
  std::cout << "--- Theorem 1, d = " << d << " ---\n";
  std::cout << "G: " << g.summary() << " (A: " << d << " nodes, B: " << d - 1
            << " nodes; S = perfect matching on A, T = K_{" << d << ","
            << d - 1 << "})\n";
  std::cout << "optimal |S| = " << inst.optimal.size()
            << ", covering multigraph: " << inst.covering_base.summary()
            << "\n";

  const auto outcome =
      eds::algo::run_algorithm(inst.ported, eds::algo::Algorithm::kPortOne);
  const auto ratio = eds::analysis::approximation_ratio(
      outcome.solution.size(), inst.optimal.size());
  std::cout << "port-one output |D| = " << outcome.solution.size()
            << "  ->  ratio " << ratio << " (forced bound " << inst.forced_ratio
            << ")\n";

  const auto factory = eds::algo::make_factory(eds::algo::Algorithm::kPortOne);
  const auto raw = eds::runtime::run_synchronous(inst.ported.ports(), *factory);
  std::cout << "all nodes output the same port set: "
            << (eds::runtime::all_outputs_identical(raw) ? "yes" : "no")
            << " (the covering-map symmetry argument in action)\n\n";
}

void tour_odd(eds::port::Port d) {
  const auto inst = eds::lb::odd_lower_bound(d);
  const auto& g = inst.ported.graph();
  const auto k = (d - 1) / 2;
  std::cout << "--- Theorem 2, d = " << d << " (k = " << k << ") ---\n";
  std::cout << "G: " << g.summary() << " (" << d << " components H(l) of "
            << 4 * k + 1 << " nodes + hubs |P| = " << d << ", |Q| = " << 2 * k
            << ")\n";
  std::cout << "optimal |D*| = (k+1)d = " << inst.optimal.size()
            << ", covering multigraph: " << inst.covering_base.summary()
            << "\n";

  const auto outcome = eds::algo::run_algorithm(
      inst.ported, eds::algo::Algorithm::kOddRegular, d);
  const auto ratio = eds::analysis::approximation_ratio(
      outcome.solution.size(), inst.optimal.size());
  std::cout << "odd-regular output |D| = " << outcome.solution.size()
            << " (= (2d-1)d = " << (2 * static_cast<unsigned>(d) - 1) * d
            << ")  ->  ratio " << ratio << " (forced bound "
            << inst.forced_ratio << ")\n\n";
}

}  // namespace

int main() {
  std::cout << "Tightness tour: the adversarial graphs force every\n"
               "deterministic anonymous algorithm to its Table 1 ratio.\n\n";
  for (const eds::port::Port d : {2u, 4u, 6u, 8u}) tour_even(d);
  for (const eds::port::Port d : {3u, 5u, 7u}) tour_odd(d);
  return 0;
}
