// How to implement your own distributed algorithm against the library API.
//
// We build a small anonymous algorithm from scratch: a "greedy port
// matching" that, for k = 1..∆ sequentially, adds every edge whose two
// endpoints both rank it as their lowest-numbered *free* port and whose two
// port numbers are equal (a naive symmetric matcher).  It is deliberately
// simple — the point is the NodeProgram/ProgramFactory pattern:
//
//   1. derive from runtime::NodeProgram,
//   2. drive a fixed round schedule from the family parameter,
//   3. exchange messages only through the ports,
//   4. announce output ports and halt,
//   5. run through run_synchronous + validated_edge_set and verify with the
//      analysis toolbox.
//
// The example then compares it against the paper's algorithms: the naive
// matcher produces a matching but NOT always a dominating one — the
// verifiers catch that — which is exactly why the paper's machinery
// (distinguishable neighbours, degree classes, double covers) is needed.
#include <iostream>
#include <set>

#include "algo/driver.hpp"
#include "analysis/verify.hpp"
#include "graph/generators.hpp"
#include "port/ported_graph.hpp"
#include "runtime/outputs.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"

namespace {

using eds::port::Port;
using eds::runtime::Message;
using eds::runtime::Round;

constexpr std::int32_t kTagOffer = 1;

class NaivePortMatcher final : public eds::runtime::NodeProgram {
 public:
  explicit NaivePortMatcher(Port max_degree) : delta_(max_degree) {}

  void start(Port degree) override {
    degree_ = degree;
    if (degree_ == 0) halted_ = true;
  }

  void send(Round round, std::span<Message> out) override {
    // Round k: if my lowest free port is k, offer on it.
    offered_ = 0;
    if (matched_ == 0 && round <= degree_) {
      const auto k = static_cast<Port>(round);
      out[k - 1] = eds::runtime::msg(kTagOffer);
      offered_ = k;
    }
  }

  void receive(Round round, std::span<const Message> in) override {
    if (offered_ != 0 && in[offered_ - 1].tag == kTagOffer) {
      // Both endpoints offered this edge in the same round: symmetric
      // agreement, no tie to break — the edge joins the matching.
      matched_ = offered_;
    }
    if (round >= delta_) halted_ = true;
  }

  [[nodiscard]] bool halted() const override { return halted_; }
  [[nodiscard]] std::vector<Port> output() const override {
    return matched_ == 0 ? std::vector<Port>{} : std::vector<Port>{matched_};
  }

 private:
  Port delta_;
  Port degree_ = 0;
  Port offered_ = 0;
  Port matched_ = 0;
  bool halted_ = false;
};

class NaivePortMatcherFactory final : public eds::runtime::ProgramFactory {
 public:
  explicit NaivePortMatcherFactory(Port max_degree) : delta_(max_degree) {}
  [[nodiscard]] std::unique_ptr<eds::runtime::NodeProgram> create()
      const override {
    return std::make_unique<NaivePortMatcher>(delta_);
  }
  [[nodiscard]] std::string name() const override {
    return "naive-port-matcher";
  }

 private:
  Port delta_;
};

}  // namespace

int main() {
  eds::Rng rng(11);
  std::cout << "Custom-algorithm walkthrough: a naive symmetric matcher vs"
               " the paper's\nalgorithms, on twenty 3-regular instances.\n\n";

  int naive_dominates = 0;
  int paper_dominates = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = eds::graph::random_regular(16, 3, rng);
    const auto pg = eds::port::with_random_ports(g, rng);

    // Run the custom program exactly like the built-in ones.
    const NaivePortMatcherFactory factory(3);
    const auto raw = eds::runtime::run_synchronous(pg.ports(), factory);
    const auto naive = eds::runtime::validated_edge_set(pg, raw);

    const auto paper =
        eds::algo::run_algorithm(pg, eds::algo::Algorithm::kOddRegular, 3);

    const bool naive_ok = eds::analysis::is_edge_dominating_set(g, naive);
    const bool paper_ok =
        eds::analysis::is_edge_dominating_set(g, paper.solution);
    naive_dominates += naive_ok ? 1 : 0;
    paper_dominates += paper_ok ? 1 : 0;

    if (trial < 5) {
      std::cout << "instance " << trial << ": naive |M| = " << naive.size()
                << (eds::analysis::is_matching(g, naive) ? " (matching)"
                                                         : " (NOT a matching)")
                << ", dominating: " << (naive_ok ? "yes" : "no ")
                << "   |  paper |D| = " << paper.solution.size()
                << ", dominating: " << (paper_ok ? "yes" : "NO") << "\n";
    }
  }

  std::cout << "\nnaive matcher dominated all edges on " << naive_dominates
            << "/20 instances;\nthe paper's Theorem 4 algorithm on "
            << paper_dominates << "/20 (guaranteed).\n\n";
  std::cout
      << "Takeaway: symmetric agreement alone cannot guarantee domination in\n"
         "anonymous networks — the naive matcher leaves whole regions\n"
         "unmatched whenever port numberings disagree.  The paper's phase\n"
         "machinery exists precisely to beat this, and the library verifies\n"
         "any custom program with the same instruments (validated_edge_set,\n"
         "is_edge_dominating_set, covering-map tests).\n";
  return paper_dominates == 20 ? 0 : 1;
}
